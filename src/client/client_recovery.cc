// Client-side recovery (Sections 3.3-3.5).
//
// Crash: the LLM, cache, DPT, transaction table and unforced log tail are
// volatile; the private log file survives.
//
// Restart (client crash, Section 3.3):
//   1. Analysis from the last complete checkpoint rebuilds the DPT and the
//      transaction table.
//   2. The client re-installs the exclusive locks it held before the
//      failure (from the server's GLM, or re-derived from its own log when
//      the GLM was lost in a complex crash).
//   3. Conditional redo from the minimum DPT RedoLSN: a page is fetched
//      only if it has a DCT entry; the server sends its copy together with
//      the DCT PSN, which the client installs on the page (Property 1); a
//      record is applied only to exclusively-locked objects whose PSN
//      condition indicates the update is missing.
//   4. Undo rolls back transactions active at the crash, writing CLRs.
//
// Server-crash coordination (Section 3.4): HandleRecRecoverPage replays this
// client's records for one page onto the base copy the server supplies,
// honouring the merged CallBack_P list, and ships the result. A resumable
// cursor supports the parallel-recovery handshake: a bounded call processes
// all records with PSN < limit and pauses.

#include <algorithm>

#include "client/client.h"
#include "server/page_merge.h"

namespace finelog {

Status Client::Crash() {
  SimMutexLock lock(mu_);
  crashed_ = true;
  llm_.Clear();
  cache_->Clear();
  dpt_.clear();
  ship_info_.clear();
  unflushed_slots_.clear();
  pending_callbacks_.clear();
  txns_.clear();
  tokens_held_.clear();
  recovery_sessions_.clear();
  // The group-commit queue dies with the unforced log tail: its commit
  // records were never durable, so recovery rolls those members back.
  pending_commits_.clear();
  // Liveness state is volatile: the restarted process renews from scratch.
  last_heartbeat_us_ = 0;
  lease_valid_until_ = 0;
  // Reopen the private log: the unforced tail is lost, exactly as a real
  // volatile log buffer would be.
  FINELOG_ASSIGN_OR_RETURN(
      log_, LogManager::Open(config_.dir + "/client" + ToString(id_) +
                                 ".log",
                             config_.client_log_capacity, LogIo()));
  metrics_->Add(Counter::kClientCrashes);
  return Status::OK();
}

Result<Client::AnalysisResult> Client::RunAnalysis() {
  AnalysisResult out;
  Lsn start = log_->checkpoint_lsn();
  if (start != kNullLsn) {
    auto ckpt = log_->Read(start);
    if (!ckpt.ok()) return ckpt.status();
    for (const TxnCheckpointInfo& t : ckpt.value().active_txns) {
      Txn txn;
      txn.first_lsn = t.first_lsn;
      txn.last_lsn = t.last_lsn;
      out.txns[t.txn] = txn;
    }
    for (const DptEntry& d : ckpt.value().dpt) {
      out.dpt[d.page] = d.redo_lsn;
    }
  } else {
    start = log_->begin_lsn();
  }

  Status st = log_->Scan(start, [&](const LogRecord& rec) -> Status {
    // Transaction ids must never be reused across a crash (their log
    // records would alias); resume the sequence past every id in the tail.
    if (rec.txn != kInvalidTxnId) {
      next_txn_seq_ = std::max<uint64_t>(next_txn_seq_, TxnSeqOf(rec.txn) + 1);
    }
    switch (rec.type) {
      case LogRecordType::kUpdate:
      case LogRecordType::kClr: {
        Txn& txn = out.txns[rec.txn];
        if (txn.first_lsn == kNullLsn) txn.first_lsn = rec.lsn;
        txn.last_lsn = rec.lsn;
        if (out.dpt.count(rec.page) == 0) out.dpt[rec.page] = rec.lsn;
        break;
      }
      case LogRecordType::kCommit: {
        auto it = out.txns.find(rec.txn);
        if (it != out.txns.end()) {
          it->second.state = Txn::State::kCommitted;
          it->second.last_lsn = rec.lsn;
        }
        break;
      }
      case LogRecordType::kAbort: {
        auto it = out.txns.find(rec.txn);
        if (it != out.txns.end()) it->second.last_lsn = rec.lsn;
        break;
      }
      case LogRecordType::kTxnEnd:
        out.txns.erase(rec.txn);
        break;
      case LogRecordType::kSavepoint:
      case LogRecordType::kCallback: {
        auto it = out.txns.find(rec.txn);
        if (it != out.txns.end()) it->second.last_lsn = rec.lsn;
        break;
      }
      default:
        break;
    }
    return Status::OK();
  });
  if (!st.ok()) return st;

  // Second pass over the full redo window (which can start before the
  // checkpoint anchor): collect the objects/pages whose exclusive locks the
  // redo of this log would exercise, plus the highest PSN per object.
  Lsn redo_start = start;
  for (const auto& [pid, redo] : out.dpt) {
    (void)pid;
    redo_start = std::min(redo_start, redo);
  }
  std::set<ObjectId> x_objects;
  std::set<PageId> x_pages;
  st = log_->Scan(redo_start, [&](const LogRecord& rec) -> Status {
    if (rec.type == LogRecordType::kCallback &&
        out.dpt.count(rec.cb_object.page) > 0) {
      // Our own hand-off records: after a complex crash, redo of the page
      // must wait for the responder's recovered state (the same ordering
      // the Section 3.4 session handshake provides).
      Psn& w = out.own_handoffs[rec.cb_object.page][rec.cb_responder];
      w = std::max(w, rec.cb_psn);
      return Status::OK();
    }
    if (rec.type != LogRecordType::kUpdate && rec.type != LogRecordType::kClr) {
      return Status::OK();
    }
    if (out.dpt.count(rec.page) == 0) return Status::OK();
    ObjectId oid{rec.page, rec.slot};
    Psn& mp = out.max_psn[oid];
    mp = std::max(mp, rec.psn);
    if (rec.op == UpdateOp::kOverwrite ||
        rec.op == UpdateOp::kResizeInPlace) {
      x_objects.insert(oid);
    } else {
      x_pages.insert(rec.page);
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  out.x_objects.assign(x_objects.begin(), x_objects.end());
  out.x_pages.assign(x_pages.begin(), x_pages.end());
  return out;
}

Status Client::RunRedo(const AnalysisResult& analysis,
                       const std::map<PageId, Psn>& dct_psn,
                       bool dct_authoritative,
                       const std::map<ObjectId, Psn>& callback_lists) {
  if (analysis.dpt.empty()) return Status::OK();
  Lsn start = kMaxLsn;
  for (const auto& [pid, redo] : analysis.dpt) {
    (void)pid;
    start = std::min(start, redo);
  }

  return log_->Scan(start, [&](const LogRecord& rec) -> Status {
    if (rec.type != LogRecordType::kUpdate && rec.type != LogRecordType::kClr) {
      return Status::OK();  // Callback records are not processed (3.3).
    }
    auto dit = analysis.dpt.find(rec.page);
    if (dit == analysis.dpt.end() || rec.lsn < dit->second) return Status::OK();
    // Only pages with a DCT entry need recovery (Property 1) -- valid only
    // while the DCT is authoritative; after a server crash every DPT page
    // must be considered (Section 3.5).
    if (dct_authoritative && dct_psn.count(rec.page) == 0) {
      return Status::OK();
    }

    BufferPool::Frame* frame = cache_->Peek(rec.page);
    if (frame == nullptr) {
      // Complex crash, page granularity: honor the hand-off order recorded
      // in our own log -- the responders' recovered states must be merged
      // at the server before we rebuild on top of them (otherwise our ship,
      // built on the stale disk base, would shadow their whole-page state).
      // Object granularity needs none of this: per-slot overlays plus
      // CallBack_P suppression already order same-object updates.
      if (!dct_authoritative &&
          config_.lock_granularity == LockGranularity::kPage) {
        auto hit = analysis.own_handoffs.find(rec.page);
        if (hit != analysis.own_handoffs.end()) {
          for (const auto& [responder, w] : hit->second) {
            auto ordered = server_->RecOrderedFetch(id_, rec.page, responder, w);
            if (!ordered.ok()) return ordered.status();  // kCrashed => defer.
          }
        }
      }
      auto reply = server_->RecFetchPage(id_, rec.page);
      if (!reply.ok()) return reply.status();
      Page page(config_.page_size);
      page.raw() = reply.value().page_image;
      // Install the PSN the server remembers for this client (3.3): records
      // with PSN >= this value are exactly the ones missing from the
      // server's copy.
      if (reply.value().dct_psn != kNullPsn) {
        page.set_psn(reply.value().dct_psn);
      }
      auto put = cache_->Put(rec.page, std::move(page), EvictHandler());
      if (!put.ok()) return put.status();
      frame = put.value();
      metrics_->Add(Counter::kClientRecoveryPageFetches);
    }
    Page& page = frame->page;

    // Apply only updates to objects this client holds exclusively (3.3).
    // After a complex crash the re-installed lock set is approximate, so
    // correctness rests on the PSN baseline plus the CallBack_P suppression
    // below; the lock filter applies only when the GLM survived.
    bool covered;
    if (rec.op == UpdateOp::kOverwrite ||
        rec.op == UpdateOp::kResizeInPlace) {
      covered = llm_.CoversObject(ObjectId{rec.page, rec.slot},
                                  LockMode::kExclusive);
    } else {
      covered = llm_.CoversPage(rec.page, LockMode::kExclusive);
    }
    if (!dct_authoritative) covered = true;
    if (!covered) return Status::OK();
    if (rec.psn < page.psn()) return Status::OK();  // Already reflected.
    // Complex crash: the merged CallBack_P list supersedes the PSN baseline
    // for objects whose exclusive lock was relinquished pre-crash -- a
    // record older than the responding ship must not be replayed over a
    // later client's value (Section 3.4 rule 1 applied to Section 3.5).
    auto cit = callback_lists.find(ObjectId{rec.page, rec.slot});
    if (cit == callback_lists.end()) {
      cit = callback_lists.find(ObjectId{rec.page, kInvalidSlotId});
    }
    if (cit != callback_lists.end() && rec.psn < cit->second) {
      return Status::OK();
    }

    FINELOG_RETURN_IF_ERROR(ApplyRedo(&page, rec));
    page.set_psn(rec.psn.Next());
    TrackModification(frame, rec.page, rec.slot);
    if (rec.op != UpdateOp::kOverwrite &&
        rec.op != UpdateOp::kResizeInPlace) {
      frame->structurally_modified = true;
    }
    metrics_->Add(Counter::kClientRedos);
    return Status::OK();
  });
}

Status Client::RunUndo(std::map<TxnId, Txn> losers) {
  for (auto& [txn_id, txn] : losers) {
    if (txn.state == Txn::State::kCommitted) continue;
    txns_[txn_id] = txn;
    Txn* t = &txns_[txn_id];
    t->state = Txn::State::kActive;
    FINELOG_RETURN_IF_ERROR(RollbackTo(txn_id, t, kNullLsn));
    LogRecord end = LogRecord::Control(LogRecordType::kTxnEnd, txn_id, t->last_lsn);
    FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(end));
    t->last_lsn = lsn;
    t->state = Txn::State::kAborted;
    metrics_->Add(Counter::kClientLoserRollbacks);
  }
  return log_->Force();
}

Status Client::Restart() {
  SimMutexLock lock(mu_);
  metrics_->Add(Counter::kClientRestarts);
  // New session epoch: replies and callbacks addressed to the pre-crash
  // incarnation are fenced instead of being mistaken for fresh traffic.
  if (rpc_ != nullptr) rpc_->BumpEpoch(id_);

  // Phase 1: analysis.
  FINELOG_ASSIGN_OR_RETURN(AnalysisResult analysis, RunAnalysis());
  crashed_ = false;

  // Phase 2: re-install exclusive locks (3.3). In a complex crash the GLM
  // was lost with the server; fall back to locks derived from our own log,
  // restricted to pages the reconstructed DCT still lists for us.
  auto glm_locks = server_->RecGetMyXLocks(id_);
  if (!glm_locks.ok()) return glm_locks.status();
  auto dct = server_->RecGetMyDct(id_);
  if (!dct.ok()) return dct.status();
  bool dct_authoritative = dct.value().authoritative;
  std::map<PageId, Psn> dct_psn;
  for (const DctEntry& e : dct.value().entries) {
    dct_psn[e.page] = e.psn;
  }

  std::set<ObjectId> x_objects;
  std::set<PageId> x_pages;
  for (const auto& [oid, mode] : glm_locks.value().object_locks) {
    (void)mode;
    x_objects.insert(oid);
  }
  for (const auto& [pid, mode] : glm_locks.value().page_locks) {
    (void)mode;
    x_pages.insert(pid);
  }
  // Complex crash: collect the merged CallBack_P lists for our dirty pages.
  // They tell us which of our objects were handed over to other clients
  // before the crash (our records older than the responding ship must not
  // be replayed, and we must not re-claim those exclusive locks).
  std::map<ObjectId, Psn> callback_lists;
  if (!dct_authoritative) {
    for (const auto& [pid, redo] : analysis.dpt) {
      (void)redo;
      auto list = server_->RecGetCallbackList(id_, pid);
      if (!list.ok()) {
        if (list.status().IsRecoveringPage()) {
          // Lazy post-restart repair of this page degraded mid-flight
          // (DESIGN.md section 18): reset and let the caller retry once the
          // server's sweep has made progress.
          FINELOG_RETURN_IF_ERROR(Crash());
          metrics_->Add(Counter::kClientRestartDeferrals);
          return Status::WouldBlock("restart waits for lazy page repair");
        }
        return list.status();
      }
      for (const CallbackListEntry& e : list.value()) {
        Psn& p = callback_lists[e.object];
        p = std::max(p, e.psn);
      }
    }
  }

  // Log-derived locks are a complex-crash fallback only: when the GLM
  // survived (client-crash case), its answer is complete, and re-claiming a
  // lock that was called back before the crash would wrongly shadow the
  // current holder.
  std::vector<ObjectId> derived_objects;
  std::vector<PageId> derived_pages;
  if (!dct_authoritative) {
    for (const ObjectId& oid : analysis.x_objects) {
      // Skip objects whose lock we demonstrably gave up before the crash
      // (a later callback ship supersedes all our records for them).
      auto cit = callback_lists.find(oid);
      if (cit == callback_lists.end()) {
        cit = callback_lists.find(ObjectId{oid.page, kInvalidSlotId});
      }
      auto mit = analysis.max_psn.find(oid);
      if (cit != callback_lists.end() &&
          (mit == analysis.max_psn.end() || mit->second < cit->second)) {
        continue;
      }
      if (x_objects.insert(oid).second) {
        derived_objects.push_back(oid);
      }
    }
    for (PageId pid : analysis.x_pages) {
      auto cit = callback_lists.find(ObjectId{pid, kInvalidSlotId});
      Psn page_max;
      for (const auto& [moid, mp] : analysis.max_psn) {
        if (moid.page == pid) page_max = std::max(page_max, mp);
      }
      if (cit != callback_lists.end() && page_max < cit->second) {
        continue;
      }
      if (x_pages.insert(pid).second) {
        derived_pages.push_back(pid);
      }
    }
  }
  if (!derived_objects.empty() || !derived_pages.empty()) {
    auto accepted = server_->RecInstallLocks(id_, derived_objects, derived_pages);
    if (!accepted.ok()) return accepted.status();
    // Only accepted claims survive; rejected ones had been called back or
    // downgraded before the crash.
    std::set<ObjectId> rejected_objects(derived_objects.begin(),
                                        derived_objects.end());
    for (const auto& [oid, mode] : accepted.value().object_locks) {
      (void)mode;
      rejected_objects.erase(oid);
    }
    std::set<PageId> rejected_pages(derived_pages.begin(), derived_pages.end());
    for (const auto& [pid, mode] : accepted.value().page_locks) {
      (void)mode;
      rejected_pages.erase(pid);
    }
    for (const ObjectId& oid : rejected_objects) x_objects.erase(oid);
    for (PageId pid : rejected_pages) x_pages.erase(pid);
  }
  for (const ObjectId& oid : x_objects) {
    llm_.AddObjectLock(kInvalidTxnId, oid, LockMode::kExclusive);
  }
  for (PageId pid : x_pages) {
    llm_.AddPageLock(kInvalidTxnId, pid, LockMode::kExclusive);
  }
  llm_.OnTxnEnd(kInvalidTxnId);  // Re-installed locks are cached, not in use.

  // Phase 3: conditional redo; Phase 4: undo losers.
  dpt_ = analysis.dpt;
  Status redo = RunRedo(analysis, dct_psn, dct_authoritative, callback_lists);
  if (redo.IsCrashed() || redo.IsRecoveringPage()) {
    // An ordering dependency on a client that has not restarted yet, or a
    // lazy post-restart page repair that degraded mid-flight (DESIGN.md
    // section 18): reset to the crashed state and let the caller retry.
    FINELOG_RETURN_IF_ERROR(Crash());
    metrics_->Add(Counter::kClientRestartDeferrals);
    return Status::WouldBlock("restart waits for another crashed client");
  }
  FINELOG_RETURN_IF_ERROR(redo);
  FINELOG_RETURN_IF_ERROR(RunUndo(analysis.txns));

  // Complex crash: the server lost its merged copies along with us, so the
  // redone state must flow back immediately -- otherwise other clients read
  // stale server copies of objects we no longer hold locks on.
  if (!dct_authoritative) {
    Status ship = ShipAllDirtyPages();
    if (ship.IsRecoveringPage()) {
      FINELOG_RETURN_IF_ERROR(Crash());
      metrics_->Add(Counter::kClientRestartDeferrals);
      return Status::WouldBlock("restart waits for lazy page repair");
    }
    FINELOG_RETURN_IF_ERROR(ship);
  }

  // Fresh checkpoint so the next crash starts from here.
  FINELOG_RETURN_IF_ERROR(TakeCheckpoint());
  return server_->RecComplete(id_);
}

// ---------------------------------------------------------------------------
// Server-restart participation (Section 3.4)
// ---------------------------------------------------------------------------

Result<ClientRecoveryState> Client::HandleRecGetState() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  // A new server restart generation begins: any replay session left over
  // from an earlier (interrupted) restart is stale -- its base image and
  // cursor refer to the previous generation's merged state.
  recovery_sessions_.clear();
  ClientRecoveryState state;
  for (const auto& [pid, redo] : dpt_) {
    state.dpt.push_back(DptEntry{pid, redo});
  }
  state.cached_pages = cache_->PageIds();
  auto snap = llm_.GetSnapshot();
  state.object_locks = std::move(snap.objects);
  state.page_locks = std::move(snap.pages);
  // The server's token table died with it.
  tokens_held_.clear();
  return state;
}

Result<ShippedPage> Client::HandleRecFetchCachedPage(
    PageId pid, const std::vector<CallbackListEntry>& suppress) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::NotFound("crashed: cache is empty");
  BufferPool::Frame* frame = cache_->Peek(pid);
  if (frame == nullptr) {
    return Status::NotFound("page not cached");
  }
  FINELOG_RETURN_IF_ERROR(log_->Force());  // WAL before the copy leaves.
  ShippedPage shipped = BuildShip(pid, *frame);
  // The server lost every merge since the last flush of this page: overlay
  // everything we still hold authority over (modified since the flush),
  // not just the since-last-ship delta. A slot is excluded when the merged
  // CallBack_P list proves a successor updated it after taking it from us
  // *and* we hold no current lock on it -- a hand-off can happen without a
  // callback ever reaching us (our lock claim rejected during an earlier
  // restart: the "ghost writer" case), leaving a stale unflushed claim.
  // A currently-held lock always wins: the callback protocol keeps locked
  // objects fresh, so any list entry about them is from an older epoch.
  shipped.modified_slots.clear();
  auto uit = unflushed_slots_.find(pid);
  if (uit != unflushed_slots_.end()) {
    for (SlotId slot : uit->second) {
      bool superseded = false;
      if (!llm_.CoversObject(ObjectId{pid, slot}, LockMode::kShared)) {
        for (const CallbackListEntry& e : suppress) {
          if (e.object.slot == slot) superseded = true;
        }
      }
      if (!superseded) shipped.modified_slots.push_back(slot);
    }
  }
  shipped.structural = false;  // Slot overlay covers creates/deletes.
  return shipped;
}

Result<std::vector<CallbackListEntry>> Client::HandleRecScanCallbacks(
    PageId pid, ClientId responder) {
  SimMutexLock lock(mu_);
  // Deliberately answered even while this client is crashed: the scan only
  // touches the durable log file, never volatile state.
  // Callback records this client wrote naming `responder` for objects on
  // `pid`; only the most recent PSN per object matters (Section 3.4).
  std::map<ObjectId, Psn> latest;
  // A hand-off marker suppresses the responder's replay only once this
  // client durably continued the object's history (an Update/CLR after the
  // Callback record). A callback at the durable tail with its follow-up
  // update lost (torn force, abort between the two appends) must not
  // suppress: the responder's log is then the only durable source of the
  // object's committed value.
  std::map<ObjectId, Psn> pending;
  // Scan the whole retained log: hand-off records older than the current
  // reclaim point can still order another client's replay (the paper bounds
  // this scan by the DPT RedoLSN, an optimization that relies on flush
  // coverage the post-crash DCT reconstruction cannot always reproduce).
  Status st = log_->Scan(log_->begin_lsn(), [&](const LogRecord& rec) {
    if (rec.type == LogRecordType::kCallback &&
        rec.cb_object.page == pid && rec.cb_responder == responder) {
      // Whole-page hand-off entries (sentinel slot) never go into the
      // suppression list: page-granularity ordering is enforced by the
      // linear per-page PSN history (the server adopts only newer page
      // images) plus the parallel-recovery handshake these records drive
      // in the *requester's* replay.
      if (rec.cb_object.slot == kInvalidSlotId) {
        return Status::OK();
      }
      pending[rec.cb_object] = rec.cb_psn;
      return Status::OK();
    }
    if ((rec.type == LogRecordType::kUpdate ||
         rec.type == LogRecordType::kClr) &&
        rec.page == pid) {
      auto pit = pending.find(ObjectId{rec.page, rec.slot});
      if (pit != pending.end()) {
        latest[pit->first] = pit->second;
        pending.erase(pit);
      }
    }
    return Status::OK();
  });
  if (!st.ok()) return st;
  std::vector<CallbackListEntry> out;
  out.reserve(latest.size());
  for (const auto& [oid, psn] : latest) {
    out.push_back(CallbackListEntry{oid, psn});
  }
  return out;
}

Status Client::HandleRecRecoverPage(
    PageId pid, const std::vector<CallbackListEntry>& callback_list,
    const std::string& base_image, Psn base_psn, Psn psn_limit) {
  SimMutexLock lock(mu_);
  // Deliberately serviceable while this client is "crashed": the replay
  // reads only the durable log and the supplied base -- no volatile state.
  // This lets another recovering client's ordered fetch obtain our
  // contribution without waiting for our full restart (Section 3.4's
  // partial recovery, applied across simultaneous failures).

  auto sit = recovery_sessions_.find(pid);
  if (sit == recovery_sessions_.end()) {
    RecoverySession session;
    session.page = Page(config_.page_size);
    session.page.raw() = base_image;
    // Install the DCT PSN (Property 1); with no reconstructed PSN the base
    // image's own PSN (the disk state) is the correct conservative base.
    if (base_psn != kNullPsn) session.page.set_psn(base_psn);
    for (const CallbackListEntry& e : callback_list) {
      session.callback_list[e.object] = e.psn;
    }
    // Collect this client's records for the page, in LSN order, from the
    // DPT RedoLSN (Section 3.4: "the starting point of the log scan is
    // determined from the RedoLSN value present in the DPT entry for P").
    auto dit = dpt_.find(pid);
    Lsn start = dit != dpt_.end() ? dit->second : log_->reclaim_lsn();
    Status st = log_->Scan(start, [&](const LogRecord& rec) {
      bool relevant =
          ((rec.type == LogRecordType::kUpdate ||
            rec.type == LogRecordType::kClr) &&
           rec.page == pid) ||
          (rec.type == LogRecordType::kCallback && rec.cb_object.page == pid);
      if (relevant) session.records.push_back(rec);
      return Status::OK();
    });
    if (!st.ok()) return st;
    sit = recovery_sessions_.emplace(pid, std::move(session)).first;
    metrics_->Add(Counter::kClientRecoverySessions);
  }
  RecoverySession& session = sit->second;
  if (session.complete) return Status::OK();

  while (session.cursor < session.records.size()) {
    const LogRecord& rec = session.records[session.cursor];
    Psn rec_psn = rec.type == LogRecordType::kCallback ? rec.cb_psn : rec.psn;
    if (psn_limit != kNullPsn && rec_psn >= psn_limit) break;

    if (rec.type == LogRecordType::kCallback) {
      ObjectId oid = rec.cb_object;
      if (session.callback_list.count(oid) > 0) {
        // Rule 3, first half: ordering for this object is already fixed by
        // the merged CallBack_P list; skip.
        ++session.cursor;
        continue;
      }
      // Rule 3, second half: we took this object (or whole page, for a
      // page-granularity hand-off) over from another client; its updates
      // must reach us (through the server) before ours replay on top --
      // the parallel-recovery handshake.
      auto fetched = server_->RecOrderedFetch(id_, pid, rec.cb_responder,
                                              rec.cb_psn);
      if (!fetched.ok()) return fetched.status();
      Page incoming(config_.page_size);
      incoming.raw() = fetched.value().page_image;
      Psn keep = session.page.psn();
      if (oid.slot != kInvalidSlotId) {
        // Overlay just the handed-over object; the session PSN is left
        // alone (it tracks this client's own record sequence).
        std::optional<std::string> image;
        if (incoming.SlotExists(oid.slot)) {
          auto data = incoming.ReadObject(oid.slot);
          if (!data.ok()) return data.status();
          image = std::move(data).value();
        }
        FINELOG_RETURN_IF_ERROR(
            InstallObject(&session.page, oid.slot, image, Psn{0}));
      } else {
        // Whole-page hand-off: the fetched copy supersedes ours entirely.
        session.page.raw() = incoming.raw();
      }
      session.page.set_psn(keep);
      metrics_->Add(Counter::kClientOrderedFetches);
      ++session.cursor;
      continue;
    }

    // Update / CLR record.
    ObjectId oid{rec.page, rec.slot};
    bool apply;
    auto lit = session.callback_list.find(oid);
    if (lit == session.callback_list.end()) {
      // A whole-page hand-off entry covers every object on the page.
      lit = session.callback_list.find(ObjectId{rec.page, kInvalidSlotId});
    }
    if (lit != session.callback_list.end()) {
      // Rule 1: objects that were called back from us replay only from the
      // PSN of our responding ship onward.
      apply = rec.psn >= lit->second;
    } else {
      // Rule 2 with Property 1's PSN condition against the installed base.
      apply = rec.psn >= session.page.psn();
    }
    if (apply) {
      FINELOG_RETURN_IF_ERROR(ApplyRedo(&session.page, rec));
      session.page.set_psn(std::max(session.page.psn(), rec.psn.Next()));
      session.modified.insert(rec.slot);
      metrics_->Add(Counter::kClientRecoveryRedos);
    }
    ++session.cursor;
  }

  // Ship the current state back so the server can merge it (slot overlay:
  // structural ops were serialized by page locks originally, so per-slot
  // merging is consistent even for creates and deletes).
  ShippedPage shipped;
  shipped.page = pid;
  shipped.image = session.page.raw();
  shipped.modified_slots.assign(session.modified.begin(),
                                session.modified.end());
  shipped.structural = false;
  Psn ship_psn = session.page.psn();
  FINELOG_RETURN_IF_ERROR(server_->ShipPage(id_, shipped));

  if (psn_limit == kNullPsn) {
    // The recovered state is now at the server; our RedoLSN can advance
    // once the server flushes (normal flush-notification path).
    ship_info_[pid] = ShipInfo{ship_psn, log_->end_lsn()};
    recovery_sessions_.erase(pid);
  }
  return Status::OK();
}

}  // namespace finelog
