// Quickstart: create a deployment, run transactions on two clients, survive
// a client crash, and read everything back.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "core/system.h"

using namespace finelog;

int main() {
  // A finelog System simulates a page server plus N client workstations in
  // one process. Files live under `dir`; everything else is volatile and
  // crash injection wipes exactly that.
  SystemConfig config;
  config.dir = "/tmp/finelog_quickstart";
  std::filesystem::remove_all(config.dir);
  config.num_clients = 2;
  config.preloaded_pages = 8;  // Small demo database.

  auto system_or = System::Create(config);
  if (!system_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();
  Client& alice = system->client(0);
  Client& bob = system->client(1);

  // A transaction executes entirely at its client. ObjectId{page, slot}
  // addresses an object; bootstrap objects are zero-filled.
  TxnId txn = alice.Begin().value();
  std::string value(config.object_size, '\0');
  std::string("hello from alice").copy(value.data(), value.size());
  if (!alice.Write(txn, ObjectId{PageId(0), 0}, value).ok()) return 1;

  // Commit forces only Alice's private log -- watch the message counter.
  uint64_t msgs_before = system->channel().total_messages();
  if (!alice.Commit(txn).ok()) return 1;
  std::printf("commit sent %llu messages to the server\n",
              (unsigned long long)(system->channel().total_messages() -
                                   msgs_before));

  // Bob reads the object: the server calls Alice back, she ships her dirty
  // page, the copies are merged, and Bob sees the committed value.
  TxnId bob_txn = bob.Begin().value();
  auto read = bob.Read(bob_txn, ObjectId{PageId(0), 0});
  std::printf("bob reads: \"%.16s\"\n", read.value().c_str());
  (void)bob.Commit(bob_txn);

  // Crash Alice: her cache, lock table and unforced log tail are gone. Her
  // private log survives, and restart recovery (ARIES analysis / redo /
  // undo, Section 3.3 of the paper) rebuilds her committed state.
  (void)system->CrashClient(0);
  if (!system->RecoverClient(0).ok()) return 1;

  TxnId check = alice.Begin().value();
  auto after = alice.Read(check, ObjectId{PageId(0), 0});
  std::printf("after crash+recovery, alice reads: \"%.16s\"\n",
              after.value().c_str());
  (void)alice.Commit(check);

  std::printf("quickstart OK\n");
  return 0;
}
