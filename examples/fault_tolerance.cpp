// Fault-tolerance tour: walks the three recovery scenarios of the paper --
// client crash (Section 3.3), server crash (Section 3.4) and a complex
// simultaneous crash (Section 3.5) -- and shows committed data surviving
// each one while uncommitted work is rolled back.
//
//   ./build/examples/fault_tolerance

#include <cstdio>
#include <filesystem>

#include "core/system.h"

using namespace finelog;

namespace {

std::string Value(const SystemConfig& config, const char* text) {
  std::string value(config.object_size, '\0');
  std::string(text).copy(value.data(), value.size());
  return value;
}

bool Expect(System& system, size_t reader, ObjectId oid,
            const std::string& expected, const char* what) {
  Client& c = system.client(reader);
  TxnId txn = c.Begin().value();
  auto got = c.Read(txn, oid);
  (void)c.Commit(txn);
  bool ok = got.ok() && got.value() == expected;
  std::printf("  %-46s %s\n", what, ok ? "OK" : "FAILED");
  return ok;
}

}  // namespace

int main() {
  SystemConfig config;
  config.dir = "/tmp/finelog_faults";
  std::filesystem::remove_all(config.dir);
  config.num_clients = 3;
  config.preloaded_pages = 8;
  auto system = System::Create(config).value();

  bool ok = true;

  // --- Scenario 1: client crash with committed + uncommitted work --------
  std::printf("scenario 1: client crash\n");
  Client& c0 = system->client(0);
  std::string committed = Value(config, "committed-by-c0");
  {
    TxnId txn = c0.Begin().value();
    (void)c0.Write(txn, ObjectId{PageId(1), 0}, committed);
    (void)c0.Commit(txn);
    // An uncommitted transaction is in flight when the machine dies.
    TxnId loser = c0.Begin().value();
    (void)c0.Write(txn = loser, ObjectId{PageId(1), 1}, Value(config, "uncommitted"));
  }
  (void)system->CrashClient(0);
  (void)system->RecoverClient(0);
  ok &= Expect(*system, 1, ObjectId{PageId(1), 0}, committed,
               "committed update survives");
  ok &= Expect(*system, 1, ObjectId{PageId(1), 1}, std::string(config.object_size, '\0'),
               "uncommitted update rolled back");

  // --- Scenario 2: server crash, divergent copies at two clients ----------
  std::printf("scenario 2: server crash\n");
  std::string v1 = Value(config, "client1-object");
  std::string v2 = Value(config, "client2-object");
  {
    // Two clients update different objects of the SAME page, then replace
    // their copies; the merged copy exists only in the server's buffer
    // pool -- which the crash destroys.
    TxnId t1 = system->client(1).Begin().value();
    (void)system->client(1).Write(t1, ObjectId{PageId(2), 0}, v1);
    (void)system->client(1).Commit(t1);
    TxnId t2 = system->client(2).Begin().value();
    (void)system->client(2).Write(t2, ObjectId{PageId(2), 1}, v2);
    (void)system->client(2).Commit(t2);
    (void)system->client(1).ShipAllDirtyPages();
    (void)system->client(2).ShipAllDirtyPages();
  }
  (void)system->CrashServer();
  (void)system->RecoverAll();
  ok &= Expect(*system, 0, ObjectId{PageId(2), 0}, v1, "client 1's update recovered");
  ok &= Expect(*system, 0, ObjectId{PageId(2), 1}, v2, "client 2's update recovered");

  // --- Scenario 3: complex crash (server + clients at once) ---------------
  std::printf("scenario 3: complex crash (server + 2 clients)\n");
  std::string v3 = Value(config, "before-the-storm");
  {
    TxnId txn = system->client(0).Begin().value();
    (void)system->client(0).Write(txn, ObjectId{PageId(3), 0}, v3);
    (void)system->client(0).Commit(txn);
    (void)system->client(0).ShipAllDirtyPages();
  }
  (void)system->CrashClient(0);
  (void)system->CrashClient(1);
  (void)system->CrashServer();
  // RecoverAll sequences per Section 3.5: server restart first (work that
  // depends on crashed clients is deferred), then each client.
  (void)system->RecoverAll();
  ok &= Expect(*system, 2, ObjectId{PageId(3), 0}, v3,
               "update survives server+client crash");

  std::printf("%s\n", ok ? "fault tolerance tour OK" : "TOUR FAILED");
  return ok ? 0 : 1;
}
