// Document store: an office-information-system flavored example exercising
// the structural (non-mergeable) operations -- create, resize, delete -- and
// savepoints with partial rollback.
//
// Documents are variable-length objects; editing grows and shrinks them,
// which modifies page structure and therefore takes page-level exclusive
// locks (Section 3.1). Savepoints let an editor abandon part of a long
// editing session without losing the rest (Section 3.2).
//
//   ./build/examples/document_store

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/system.h"

using namespace finelog;

int main() {
  SystemConfig config;
  config.dir = "/tmp/finelog_docs";
  std::filesystem::remove_all(config.dir);
  config.num_clients = 2;
  config.num_pages = 64;
  config.preloaded_pages = 2;
  config.objects_per_page = 4;
  config.object_size = 32;
  auto system = System::Create(config).value();
  Client& editor = system->client(0);
  Client& archivist = system->client(1);

  // The editor drafts three documents on a freshly allocated page.
  TxnId draft = editor.Begin().value();
  PageId folder = editor.AllocatePage(draft).value();
  std::vector<ObjectId> docs;
  for (int i = 0; i < 3; ++i) {
    std::string body = "draft #" + std::to_string(i);
    docs.push_back(editor.Create(draft, folder, body).value());
  }
  if (!editor.Commit(draft).ok()) return 1;
  std::printf("created %zu documents in folder page %u\n", docs.size(), folder.value());

  // A long editing session: extend doc 0, set a savepoint, mangle doc 1,
  // think better of it, and roll back just that part.
  TxnId session = editor.Begin().value();
  std::string grown =
      "draft #0, now revised and considerably expanded with new sections";
  if (!editor.Resize(session, docs[0], grown).ok()) return 1;
  size_t sp = editor.SetSavepoint(session).value();
  (void)editor.Resize(session, docs[1], "oops, gutted");
  (void)editor.Delete(session, docs[2]);
  if (!editor.RollbackToSavepoint(session, sp).ok()) return 1;
  if (!editor.Commit(session).ok()) return 1;

  // The archivist audits the folder from another workstation.
  TxnId audit = archivist.Begin().value();
  auto d0 = archivist.Read(audit, docs[0]);
  auto d1 = archivist.Read(audit, docs[1]);
  auto d2 = archivist.Read(audit, docs[2]);
  std::printf("doc0: \"%s\"\n", d0.value().c_str());
  std::printf("doc1: \"%s\"  (mangling rolled back)\n", d1.value().c_str());
  std::printf("doc2: \"%s\"  (deletion rolled back)\n", d2.value().c_str());
  (void)archivist.Commit(audit);
  if (d0.value() != grown || d1.value() != "draft #1" ||
      d2.value() != "draft #2") {
    std::fprintf(stderr, "audit mismatch!\n");
    return 1;
  }

  // Archive: shrink all documents to stubs and delete the last one -- then
  // crash the editor's workstation mid-archive and verify atomicity.
  TxnId archive = editor.Begin().value();
  (void)editor.Resize(archive, docs[0], "[archived]");
  (void)editor.Resize(archive, docs[1], "[archived]");
  // Crash before commit: the whole archive transaction must vanish.
  (void)system->CrashClient(0);
  (void)system->RecoverClient(0);

  TxnId audit2 = archivist.Begin().value();
  auto after = archivist.Read(audit2, docs[0]);
  (void)archivist.Commit(audit2);
  if (after.value() != grown) {
    std::fprintf(stderr, "atomicity violated: partial archive survived\n");
    return 1;
  }
  std::printf("mid-transaction crash rolled back the whole archive pass\n");
  std::printf("document store example OK\n");
  return 0;
}
