// log_inspector: dump a finelog private or server log in human-readable
// form. Invaluable when debugging recovery: shows the exact record stream a
// restart would replay.
//
//   ./build/examples/log_inspector /tmp/finelog_quickstart/client0.log
//   ./build/examples/log_inspector /tmp/finelog_quickstart/server.log

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "log/log_manager.h"

using namespace finelog;

namespace {

void PrintPayload(const char* label, const std::string& bytes) {
  std::printf(" %s=%zuB\"", label, bytes.size());
  size_t shown = std::min<size_t>(bytes.size(), 12);
  for (size_t i = 0; i < shown; ++i) {
    char c = bytes[i];
    std::printf("%c", (c >= 32 && c < 127) ? c : '.');
  }
  if (bytes.size() > shown) std::printf("...");
  std::printf("\"");
}

void PrintRecord(const LogRecord& rec) {
  std::printf("%8" PRIu64 "  %-16s", rec.lsn.value(), LogRecordTypeName(rec.type));
  if (rec.txn != kInvalidTxnId) {
    std::printf(" txn=%" PRIx64, rec.txn.value());
  }
  switch (rec.type) {
    case LogRecordType::kUpdate:
      std::printf(" page=%u slot=%u op=%d psn=%" PRIu64, rec.page.value(),
                  rec.slot, static_cast<int>(rec.op), rec.psn.value());
      PrintPayload("redo", rec.redo);
      PrintPayload("undo", rec.undo);
      break;
    case LogRecordType::kClr:
      std::printf(" page=%u slot=%u op=%d psn=%" PRIu64 " undo_next=%" PRIu64,
                  rec.page.value(), rec.slot, static_cast<int>(rec.op),
                  rec.psn.value(), rec.undo_next_lsn.value());
      PrintPayload("redo", rec.redo);
      break;
    case LogRecordType::kCallback:
      if (rec.cb_object.slot == kInvalidSlotId) {
        std::printf(" page=%u (whole page)", rec.cb_object.page.value());
      } else {
        std::printf(" object=%u:%u", rec.cb_object.page.value(), rec.cb_object.slot);
      }
      std::printf(" responder=%u psn=%" PRIu64, rec.cb_responder.value(),
                  rec.cb_psn.value());
      break;
    case LogRecordType::kClientCheckpoint:
      std::printf(" active_txns=%zu dpt={", rec.active_txns.size());
      for (const DptEntry& d : rec.dpt) {
        std::printf(" %u@%" PRIu64, d.page.value(), d.redo_lsn.value());
      }
      std::printf(" }");
      break;
    case LogRecordType::kReplacement:
      std::printf(" page=%u page_psn=%" PRIu64 " dct={", rec.page.value(),
                  rec.page_psn.value());
      for (const DctEntry& e : rec.dct) {
        std::printf(" c%u@%" PRIu64, e.client.value(), e.psn.value());
      }
      std::printf(" }");
      break;
    case LogRecordType::kServerCheckpoint:
      std::printf(" dct_entries=%zu", rec.dct.size());
      break;
    default:
      break;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <log-file> [from_lsn]\n", argv[0]);
    return 2;
  }
  auto lm = LogManager::Open(argv[1]);
  if (!lm.ok()) {
    std::fprintf(stderr, "open failed: %s\n", lm.status().ToString().c_str());
    return 1;
  }
  LogManager& log = *lm.value();
  Lsn from = argc > 2 ? Lsn(std::strtoull(argv[2], nullptr, 10))
                      : log.begin_lsn();
  std::printf("log %s: durable_end=%" PRIu64 " checkpoint=%" PRIu64
              " reclaim=%" PRIu64 "\n",
              argv[1], log.durable_lsn().value(), log.checkpoint_lsn().value(),
              log.reclaim_lsn().value());
  std::printf("%8s  %-16s detail\n", "lsn", "type");
  Status st = log.Scan(from, [&](const LogRecord& rec) {
    PrintRecord(rec);
    return Status::OK();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "scan stopped: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
