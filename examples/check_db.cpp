// check_db: offline consistency checker (fsck) for a finelog workspace
// directory. Verifies, without any volatile state:
//   * every allocated page on disk parses, passes its checksum, and carries
//     a PSN consistent with the space map's allocation PSN;
//   * every log file (server + clients) parses end to end;
//   * server-log replacement records reference allocated pages;
//   * checkpoint anchors point at records of the right type.
//
//   ./build/examples/check_db /tmp/finelog_quickstart

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <string>

#include "log/log_manager.h"
#include "storage/disk_manager.h"
#include "storage/space_map.h"

using namespace finelog;

namespace {

int g_errors = 0;

void Problem(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "PROBLEM: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
  ++g_errors;
}

bool CheckLog(const std::string& path, bool server_log) {
  auto lm = LogManager::Open(path);
  if (!lm.ok()) {
    Problem("cannot open log %s: %s", path.c_str(),
            lm.status().ToString().c_str());
    return false;
  }
  LogManager& log = *lm.value();
  size_t records = 0;
  Lsn ckpt = log.checkpoint_lsn();
  bool ckpt_seen = ckpt == kNullLsn;
  Status st = log.Scan(log.begin_lsn(), [&](const LogRecord& rec) {
    ++records;
    if (rec.lsn == ckpt) {
      ckpt_seen = true;
      LogRecordType want = server_log ? LogRecordType::kServerCheckpoint
                                      : LogRecordType::kClientCheckpoint;
      if (rec.type != want) {
        Problem("%s: checkpoint anchor %" PRIu64 " is a %s record",
                path.c_str(), ckpt, LogRecordTypeName(rec.type));
      }
    }
    if (server_log && rec.type == LogRecordType::kUpdate) {
      Problem("%s: data update record in the server log (lsn %" PRIu64 ")",
              path.c_str(), rec.lsn);
    }
    return Status::OK();
  });
  if (!st.ok()) {
    Problem("%s: scan failed at tail: %s", path.c_str(), st.ToString().c_str());
  }
  if (!ckpt_seen && ckpt < log.durable_lsn()) {
    Problem("%s: checkpoint anchor %" PRIu64 " not found in scan",
            path.c_str(), ckpt);
  }
  std::printf("  %-28s %6zu records, durable_end=%" PRIu64 "\n",
              std::filesystem::path(path).filename().c_str(), records,
              log.durable_lsn().value());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <workspace-dir>\n", argv[0]);
    return 2;
  }
  std::string dir = argv[1];

  // Space map + data pages.
  auto sm = SpaceMap::Open(dir + "/db.spacemap", 1);
  if (!sm.ok()) {
    Problem("cannot open space map: %s", sm.status().ToString().c_str());
    return 1;
  }
  uint32_t page_size = 0;
  {
    // Infer the page size from the file and the allocated count.
    auto size = std::filesystem::exists(dir + "/db.pages")
                    ? std::filesystem::file_size(dir + "/db.pages")
                    : 0;
    // Try common sizes; accept the first whose pages all verify.
    for (uint32_t candidate : {4096u, 2048u, 8192u, 1024u}) {
      if (size % candidate == 0) {
        page_size = candidate;
        break;
      }
    }
  }
  if (page_size == 0) {
    Problem("cannot infer page size of db.pages");
    return 1;
  }
  auto dm = DiskManager::Open(dir + "/db.pages", page_size);
  uint32_t on_disk = 0;
  for (uint32_t i = 0; i < sm.value()->num_pages(); ++i) {
    PageId p(i);
    if (!sm.value()->IsAllocated(p)) continue;
    Page page(page_size);
    Status st = dm.value()->ReadPage(p, &page);
    if (st.IsNotFound()) continue;  // Never flushed: fine.
    if (!st.ok()) {
      Problem("page %u unreadable: %s", p.value(), st.ToString().c_str());
      continue;
    }
    ++on_disk;
    if (page.id() != p) {
      Problem("page %u header claims id %u", p.value(), page.id().value());
    }
    auto base = sm.value()->BasePsn(p);
    if (base.ok() && page.psn() < base.value()) {
      Problem("page %u psn %" PRIu64 " below allocation psn %" PRIu64,
              p.value(), page.psn().value(), base.value().value());
    }
  }
  std::printf("pages: %u allocated, %u verified on disk (page_size=%u)\n",
              sm.value()->allocated_count(), on_disk, page_size);

  // Logs.
  std::printf("logs:\n");
  if (std::filesystem::exists(dir + "/server.log")) {
    CheckLog(dir + "/server.log", /*server_log=*/true);
  }
  for (int c = 0; c < 64; ++c) {
    std::string path = dir + "/client" + std::to_string(c) + ".log";
    if (!std::filesystem::exists(path)) break;
    CheckLog(path, /*server_log=*/false);
  }

  if (g_errors == 0) {
    std::printf("check_db: OK\n");
    return 0;
  }
  std::printf("check_db: %d problem(s)\n", g_errors);
  return 1;
}
