// CAD workspace: the workload class the paper's introduction motivates.
//
// A team of designers edits parts of one assembly. Parts are small objects
// packed many-to-a-page; designers repeatedly tweak *their own* parts, which
// land on the same pages as their colleagues' parts. Fine-granularity
// locking plus page-copy merging lets all designers keep editing the shared
// pages concurrently -- no update token ping-pong, no page-lock convoy --
// and every commit is a local log force on the designer's workstation.
//
//   ./build/examples/cad_workspace

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/system.h"

using namespace finelog;

namespace {

constexpr uint32_t kDesigners = 4;
constexpr uint32_t kPartsPerDesigner = 8;
constexpr int kEditRounds = 10;

// A "part": position + revision stamp, serialized into its object.
std::string EncodePart(uint32_t designer, int revision, uint32_t size) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "part d%u rev%03d x=%d y=%d", designer,
                revision, revision * 3, revision * 7);
  std::string value(size, ' ');
  std::string(buf).copy(value.data(), value.size());
  return value;
}

}  // namespace

int main() {
  SystemConfig config;
  config.dir = "/tmp/finelog_cad";
  std::filesystem::remove_all(config.dir);
  config.num_clients = kDesigners;
  config.preloaded_pages = 4;  // The whole assembly packs onto 4 pages.
  config.objects_per_page = kDesigners * kPartsPerDesigner / 4;

  auto system = System::Create(config).value();

  // Each designer's parts interleave across the shared assembly pages:
  // designer d owns slot s on page p whenever (p*slots + s) % kDesigners == d.
  auto part_of = [&](uint32_t designer, uint32_t k) {
    uint32_t flat = k * kDesigners + designer;
    return ObjectId{static_cast<PageId>(flat / config.objects_per_page),
                    static_cast<SlotId>(flat % config.objects_per_page)};
  };

  // Edit rounds: every designer updates every one of its parts, all rounds
  // interleaved. Same pages, different objects -- zero lock conflicts.
  uint64_t stalls = 0;
  for (int round = 0; round < kEditRounds; ++round) {
    std::vector<TxnId> txns;
    for (uint32_t d = 0; d < kDesigners; ++d) {
      txns.push_back(system->client(d).Begin().value());
    }
    for (uint32_t k = 0; k < kPartsPerDesigner; ++k) {
      for (uint32_t d = 0; d < kDesigners; ++d) {
        Status st = system->client(d).Write(
            txns[d], part_of(d, k), EncodePart(d, round, config.object_size));
        if (st.IsWouldBlock()) ++stalls;
      }
    }
    for (uint32_t d = 0; d < kDesigners; ++d) {
      if (!system->client(d).Commit(txns[d]).ok()) return 1;
    }
  }

  std::printf("%d edit rounds, %u designers on %u shared pages: %llu lock stalls\n",
              kEditRounds, kDesigners, config.preloaded_pages,
              (unsigned long long)stalls);

  // A reviewer (designer 0) walks the whole assembly and checks every part
  // carries the final revision -- the server merges whatever is still
  // outstanding in the editors' caches on demand.
  Client& reviewer = system->client(0);
  TxnId review = reviewer.Begin().value();
  int checked = 0;
  for (uint32_t d = 0; d < kDesigners; ++d) {
    for (uint32_t k = 0; k < kPartsPerDesigner; ++k) {
      auto part = reviewer.Read(review, part_of(d, k));
      if (!part.ok()) {
        std::fprintf(stderr, "review read failed: %s\n",
                     part.status().ToString().c_str());
        return 1;
      }
      std::string expected = EncodePart(d, kEditRounds - 1, config.object_size);
      if (part.value() != expected) {
        std::fprintf(stderr, "part d%u #%u stale!\n", d, k);
        return 1;
      }
      ++checked;
    }
  }
  (void)reviewer.Commit(review);
  std::printf("review pass: all %d parts at rev%03d\n", checked,
              kEditRounds - 1);
  // The review forced every designer's dirty copy back through the server,
  // where the divergent page copies were merged (Section 3.1).
  std::printf("callbacks during review: %llu, page copies merged: %llu\n",
              (unsigned long long)system->metrics().Get(
                  "server.callbacks_object"),
              (unsigned long long)system->metrics().Get("server.pages_merged"));
  return 0;
}
