// E11 -- Throughput with message batching and group commit.
//
// The paper's client-based architecture already makes commit a local
// operation; the remaining per-transaction costs are the lock-miss round
// trips, page fetches, page ships and the commit-time log force. This
// experiment measures how multi-item messages (config.max_batch_items) and
// group commit (config.group_commit_*) amortize those costs.
//
// Workload (1 client): kTxns update transactions, each writing 8 objects on
// 8 previously untouched pages (every lock is a GLM miss), then one
// transaction reading every written object back (all pages refetched after
// the ship), then a bulk ship of the dirty working set. The client cache is
// sized to hold the working set so eviction pressure does not mask the
// effect under study.
//
// Reported per update transaction: messages, logical items, bytes, log
// forces, simulated time, and committed transactions per simulated second.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

constexpr int kTxns = 24;
constexpr uint32_t kWritesPerTxn = 8;

struct Row {
  uint32_t batch;
  uint32_t group;
  double msgs_per_txn;
  double items_per_txn;
  double bytes_per_txn;
  double forces_per_txn;
  double us_per_txn;
  double txns_per_sim_sec;
};

void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "e11: %s failed: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

Row RunOne(uint32_t batch, uint32_t group) {
  SystemConfig config = BenchConfig("e11");
  config.num_clients = 1;
  config.num_pages = 256;
  config.preloaded_pages = 224;
  // Hold the whole working set: this experiment isolates messaging and
  // commit costs, not replacement.
  config.client_cache_pages = 256;
  config.max_batch_items = batch;
  if (group > 0) {
    // Windows never expire on their own in this run; only the txn-count
    // trigger closes a group.
    config.group_commit_window = 1000ull * 1000 * 1000;
    config.group_commit_max_txns = group;
  }
  auto system = MustCreate(config);
  Client& c = system->client(0);

  uint64_t msgs0 = system->channel().total_messages();
  uint64_t items0 = system->channel().total_items();
  uint64_t bytes0 = system->channel().total_bytes();
  uint64_t forces0 = c.log().force_count();
  uint64_t time0 = system->clock().now_us();

  for (int t = 0; t < kTxns; ++t) {
    TxnId txn = c.Begin().value();
    std::vector<std::pair<ObjectId, std::string>> writes;
    writes.reserve(kWritesPerTxn);
    for (uint32_t j = 0; j < kWritesPerTxn; ++j) {
      ObjectId oid{static_cast<PageId>(t * kWritesPerTxn + j),
                   static_cast<SlotId>(0)};
      writes.emplace_back(oid, std::string(config.object_size, 'a' + t % 26));
    }
    Must(c.WriteBatch(txn, writes), "WriteBatch");
    Must(c.Commit(txn), "Commit");
  }

  // Read everything back in one transaction and verify it: the pages were
  // never evicted, so this is all lock-cache hits -- then ship the dirty
  // working set and close the last commit group.
  Must(c.ShipAllDirtyPages(), "ShipAllDirtyPages");
  {
    TxnId txn = c.Begin().value();
    std::vector<ObjectId> oids;
    oids.reserve(kTxns * kWritesPerTxn);
    for (int t = 0; t < kTxns; ++t) {
      for (uint32_t j = 0; j < kWritesPerTxn; ++j) {
        oids.push_back(ObjectId{static_cast<PageId>(t * kWritesPerTxn + j),
                                static_cast<SlotId>(0)});
      }
    }
    auto values = c.ReadBatch(txn, oids);
    Must(values.status(), "ReadBatch");
    for (int t = 0; t < kTxns; ++t) {
      for (uint32_t j = 0; j < kWritesPerTxn; ++j) {
        const std::string& got = values.value()[t * kWritesPerTxn + j];
        if (got != std::string(config.object_size, 'a' + t % 26)) {
          std::fprintf(stderr, "e11: read-back mismatch at txn %d obj %u\n", t,
                       j);
          std::abort();
        }
      }
    }
    Must(c.Commit(txn), "read Commit");
  }
  Must(c.FlushCommitGroup(), "FlushCommitGroup");

  Row row;
  row.batch = batch;
  row.group = group;
  row.msgs_per_txn =
      double(system->channel().total_messages() - msgs0) / kTxns;
  row.items_per_txn = double(system->channel().total_items() - items0) / kTxns;
  row.bytes_per_txn = double(system->channel().total_bytes() - bytes0) / kTxns;
  row.forces_per_txn = double(c.log().force_count() - forces0) / kTxns;
  row.us_per_txn = double(system->clock().now_us() - time0) / kTxns;
  row.txns_per_sim_sec = 1e6 * kTxns / double(system->clock().now_us() - time0);
  return row;
}

}  // namespace

int main() {
  BenchJson json("e11_throughput");
  std::printf(
      "E11: throughput with batching and group commit (1 client, %d txns of "
      "%u cold writes)\n",
      kTxns, kWritesPerTxn);
  std::printf("%-6s %6s %10s %10s %12s %8s %12s %14s\n", "batch", "group",
              "msgs/txn", "items/txn", "bytes/txn", "forces", "sim_us/txn",
              "txns/sim_sec");
  for (uint32_t batch : {1u, 4u, 8u}) {
    for (uint32_t group : {0u, 8u}) {
      Row r = RunOne(batch, group);
      std::printf("%-6u %6u %10.2f %10.2f %12.1f %8.2f %12.1f %14.1f\n",
                  r.batch, r.group, r.msgs_per_txn, r.items_per_txn,
                  r.bytes_per_txn, r.forces_per_txn, r.us_per_txn,
                  r.txns_per_sim_sec);
      json.BeginRow();
      json.Field("max_batch_items", uint64_t{r.batch});
      json.Field("group_commit_max_txns", uint64_t{r.group});
      json.Field("msgs_per_txn", r.msgs_per_txn);
      json.Field("items_per_txn", r.items_per_txn);
      json.Field("bytes_per_txn", r.bytes_per_txn);
      json.Field("forces_per_txn", r.forces_per_txn);
      json.Field("us_per_txn", r.us_per_txn);
      json.Field("txns_per_sim_sec", r.txns_per_sim_sec);
    }
  }
  return json.Write() ? 0 : 1;
}
