// E17 -- Hot-standby failover: the unavailability window when the primary
// dies with a standby holding a replicated mirror (DESIGN.md section 19).
//
// N clients each commit txns_per_client transactions against private pages
// and keep the dirty pages cached (client-local logging: nothing is shipped
// or flushed), then the primary is killed mid-lease. The clients' next
// commits run the full client-driven failover machinery: the router times
// out against the dead primary, probes the standby, sits out the mastership
// gap (kFailoverInProgress), and retries once the standby's takeover
// finishes. The unavailability window is measured in simulated time from
// the kill to the first post-kill commit (and to the last client's first
// commit), separating the lease tail every failover pays from the takeover
// recovery work that depends on the standby's restart mode.
//
// Each cell runs twice: an eager standby repairs every dirty page during
// TakeOver before admitting anyone; an instant-restart standby opens
// admission right after the membership + DCT replay and repairs pages on
// first touch, so its window stays near the lease tail as the client count
// grows. Reported per cell (clients x restart mode):
//   unavail_first_us -- kill to first successful commit anywhere
//   unavail_all_us   -- kill to every client's first post-kill commit
//   lease_tail_us    -- kill to lease expiry (lower bound on the window)
//   probes/blocked   -- failover probe traffic while the gap was open
// All numbers are simulated and reruns are byte-identical; committed as
// BENCH_e17_failover.json and gated by tools/bench_gate.py.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "util/metrics.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

constexpr uint32_t kPagesPerClient = 2;
constexpr uint32_t kTxnsPerClient = 8;
constexpr uint64_t kLeaseUs = 30 * 1000;
constexpr uint64_t kFailoverTimeoutUs = 4000;

struct Cell {
  uint32_t clients;
  bool instant_restart;
  uint64_t unavail_first_us;
  uint64_t unavail_all_us;
  uint64_t lease_tail_us;
  uint64_t probes;
  uint64_t blocked;
  uint64_t takeovers;
};

SystemConfig CellConfig(uint32_t clients, bool instant) {
  SystemConfig config = BenchConfig(
      "e17_c" + std::to_string(clients) + (instant ? "_lazy" : "_eager"));
  config.num_clients = clients;
  config.num_pages = 4 * clients + 16;
  config.preloaded_pages = 3 * clients + 8;
  config.server_cache_pages = 4 * clients + 16;
  config.hot_standby = true;
  config.mastership_lease_us = kLeaseUs;
  config.failover_timeout_us = kFailoverTimeoutUs;
  config.instant_restart = instant;
  return config;
}

void MustCommit(Client* c, TxnId txn, const char* what) {
  if (Status st = c->Commit(txn); !st.ok()) {
    std::fprintf(stderr, "e17: %s commit failed: %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

// One post-kill commit on a page the client holds no cached lock on, so the
// first write must reach the server (a cached lock plus client-local commit
// would never notice the primary died). Retries ride out the mastership
// gap: the router charges failover_timeout_us of simulated time per probe
// round against the dead primary.
void CommitThroughFailover(Client* c, PageId pid) {
  TxnId txn = c->Begin().value();
  Status w;
  for (int attempt = 0; attempt < 100000; ++attempt) {
    w = c->Write(txn, ObjectId{pid, SlotId{0}}, std::string(128, 'f'));
    if (!w.IsWouldBlock()) break;
  }
  if (!w.ok()) {
    std::fprintf(stderr, "e17: post-kill write failed: %s\n",
                 w.ToString().c_str());
    std::abort();
  }
  MustCommit(c, txn, "post-kill");
}

Cell RunCell(uint32_t clients, bool instant) {
  SystemConfig config = CellConfig(clients, instant);
  auto system = MustCreate(config);

  // Load phase: private-page commits whose dirty pages stay cached at the
  // clients -- that cache is exactly the repair backlog the standby's
  // takeover has to (eagerly or lazily) work through.
  for (uint32_t i = 0; i < clients; ++i) {
    Client& c = system->client(i);
    for (uint32_t t = 0; t < kTxnsPerClient; ++t) {
      TxnId txn = c.Begin().value();
      for (uint32_t p = 0; p < kPagesPerClient; ++p) {
        ObjectId oid{PageId(i * kPagesPerClient + p),
                     static_cast<SlotId>(t % 16)};
        if (!c.Write(txn, oid, std::string(config.object_size,
                                           char('a' + t % 26)))
                 .ok()) {
          std::fprintf(stderr, "e17: load write failed\n");
          std::abort();
        }
      }
      MustCommit(&c, txn, "load");
    }
  }

  // Freshen the lease right before the kill (the last load commit may be a
  // pure client-local force): one server-touching write pins the renewal,
  // so every cell pays the same, maximal lease tail.
  {
    Client& c = system->client(0);
    TxnId txn = c.Begin().value();
    PageId fresh = PageId(kPagesPerClient * clients);
    if (!c.Write(txn, ObjectId{fresh, SlotId{0}}, std::string(128, 'z'))
             .ok()) {
      std::fprintf(stderr, "e17: lease-freshen write failed\n");
      std::abort();
    }
    MustCommit(&c, txn, "lease-freshen");
  }

  const uint64_t t_kill = system->clock().now_us();
  if (Status st = system->CrashServer(); !st.ok()) {
    std::fprintf(stderr, "e17: crash failed: %s\n", st.ToString().c_str());
    std::abort();
  }

  Cell cell{};
  cell.clients = clients;
  cell.instant_restart = instant;
  cell.lease_tail_us = kLeaseUs;

  // Failover phase: client 0's commit drives the whole takeover; the rest
  // measure how quickly the new primary admits a cold client afterwards.
  for (uint32_t i = 0; i < clients; ++i) {
    Client& c = system->client(i);
    CommitThroughFailover(&c, PageId(kPagesPerClient * clients + 1 + i));
    if (i == 0) cell.unavail_first_us = system->clock().now_us() - t_kill;
  }
  cell.unavail_all_us = system->clock().now_us() - t_kill;

  Metrics& m = system->metrics();
  cell.probes = m.Get(Counter::kFailoverProbes);
  cell.blocked = m.Get(Counter::kFailoverBlocked);
  cell.takeovers = m.Get(Counter::kFailoverTakeovers);
  if (cell.takeovers != 1 || system->active_server_node() != 1) {
    std::fprintf(stderr, "e17: cell clients=%u instant=%d did not fail over\n",
                 clients, int(instant));
    std::abort();
  }
  return cell;
}

}  // namespace

int main() {
  BenchJson json("e17_failover");
  std::printf("E17: hot-standby failover -- unavailability window\n");
  std::printf("%8s %8s %12s %12s %12s %7s %8s\n", "clients", "standby",
              "first_us", "all_us", "lease_us", "probes", "blocked");
  for (uint32_t clients : {4u, 16u, 64u}) {
    Cell eager = RunCell(clients, /*instant=*/false);
    Cell lazy = RunCell(clients, /*instant=*/true);
    for (const Cell* c : {&eager, &lazy}) {
      std::printf("%8u %8s %12llu %12llu %12llu %7llu %8llu\n", c->clients,
                  c->instant_restart ? "lazy" : "eager",
                  (unsigned long long)c->unavail_first_us,
                  (unsigned long long)c->unavail_all_us,
                  (unsigned long long)c->lease_tail_us,
                  (unsigned long long)c->probes,
                  (unsigned long long)c->blocked);
    }
    // The headline claim: an instant-restart standby keeps the window near
    // the lease tail while the eager standby's window grows with the repair
    // backlog, so the two must stay strictly ordered -- and both bounded
    // (a window under the lease tail would mean the fencing math is wrong).
    if (lazy.unavail_first_us >= eager.unavail_first_us ||
        lazy.unavail_first_us < lazy.lease_tail_us ||
        eager.unavail_first_us < eager.lease_tail_us) {
      std::fprintf(stderr,
                   "e17: cell clients=%u lost the lazy<eager ordering "
                   "(lazy=%llu eager=%llu lease=%llu)\n",
                   clients, (unsigned long long)lazy.unavail_first_us,
                   (unsigned long long)eager.unavail_first_us,
                   (unsigned long long)lazy.lease_tail_us);
      return 1;
    }
    for (const Cell* c : {&eager, &lazy}) {
      json.BeginRow();
      json.Field("clients", uint64_t{c->clients});
      json.Field("instant_restart", c->instant_restart ? uint64_t{1} : uint64_t{0});
      json.Field("unavail_first_us", c->unavail_first_us);
      json.Field("unavail_all_us", c->unavail_all_us);
      json.Field("lease_tail_us", c->lease_tail_us);
      json.Field("probes", c->probes);
      json.Field("blocked", c->blocked);
    }
  }
  return json.Write() ? 0 : 1;
}
