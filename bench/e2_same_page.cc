// E2 -- Concurrent same-page updates: copy merging (the paper) vs the
// update-token approach [17,18] vs page-level locking [20].
//
// Claim (Sections 1, 3.1): fine-granularity locking with page-copy merging
// lets multiple clients update different objects of one page concurrently;
// the token serializes physical updates (message-intensive ping-pong) and
// page locking blocks concurrency outright.
//
// N clients update disjoint slots of a small shared hot page set (the
// SHARED-HOT workload); we report throughput, conflict stalls and aborts.

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

void RunOne(const char* label, uint32_t clients, LockGranularity granularity,
            SamePageUpdatePolicy same_page) {
  SystemConfig config = BenchConfig("e2");
  config.num_clients = clients;
  config.lock_granularity = granularity;
  config.same_page_policy = same_page;
  auto system = MustCreate(config);

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 40;
  options.ops_per_txn = 6;
  options.write_fraction = 0.8;
  options.pattern = AccessPattern::kSharedHot;
  options.shared_pages = 4;
  options.hot_access_prob = 0.9;
  options.seed = 7;
  Workload workload(system.get(), &oracle, options);
  Status st = workload.Run();
  if (!st.ok()) {
    std::fprintf(stderr, "workload failed: %s\n", st.ToString().c_str());
    return;
  }
  const WorkloadStats& s = workload.stats();
  double sim_s = s.sim_time_us / 1e6;
  std::printf("%-13s %8u %9llu %8llu %12llu %11.1f\n", label, clients,
              (unsigned long long)s.commits, (unsigned long long)s.aborts,
              (unsigned long long)s.would_blocks,
              sim_s > 0 ? s.commits / sim_s : 0.0);
}

}  // namespace

int main() {
  std::printf(
      "E2: SHARED-HOT throughput (disjoint objects on 4 shared pages)\n");
  std::printf("%-13s %8s %9s %8s %12s %11s\n", "policy", "clients", "commits",
              "aborts", "lock_stalls", "txns/sim_s");
  for (uint32_t n : {2u, 4u, 8u}) {
    RunOne("merge-copies", n, LockGranularity::kObject,
           SamePageUpdatePolicy::kMergeCopies);
    RunOne("update-token", n, LockGranularity::kObject,
           SamePageUpdatePolicy::kUpdateToken);
    RunOne("page-locking", n, LockGranularity::kPage,
           SamePageUpdatePolicy::kMergeCopies);
  }
  return 0;
}
