// E5 -- Server crash recovery with coordinated, per-client page recovery
// (Section 3.4, advantage 3: clients may recover the same page in parallel;
// advantage 5: private logs are never merged).
//
// N clients commit updates to disjoint objects of a shared page set and
// replace the pages; the server crashes before any flush. Restart must
// reconstruct the DCT from replacement records and coordinate every
// client's replay of its own log. We report the recovery message count,
// the number of coordinated (page, client) replays, and simulated time --
// which grows with the number of involved clients but involves no log
// merging (each replay reads exactly one private log).

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

void RunOne(uint32_t clients, uint32_t shared_pages) {
  SystemConfig config = BenchConfig("e5");
  config.num_clients = clients;
  auto system = MustCreate(config);

  for (uint32_t i = 0; i < clients; ++i) {
    Client& c = system->client(i);
    TxnId txn = c.Begin().value();
    for (uint32_t pi = 0; pi < shared_pages; ++pi) {
      (void)c.Write(txn, ObjectId{PageId(pi), static_cast<SlotId>(i % 16)},
                    std::string(config.object_size, char('a' + i)));
    }
    (void)c.Commit(txn);
  }
  for (uint32_t i = 0; i < clients; ++i) {
    (void)system->client(i).ShipAllDirtyPages();
  }

  (void)system->CrashServer();
  uint64_t msgs0 = system->channel().total_messages();
  uint64_t time0 = system->clock().now_us();
  uint64_t sessions0 = system->metrics().Get("server.coordinated_page_recoveries");
  uint64_t ordered0 = system->metrics().Get("server.ordered_fetches");
  Status st = system->RecoverServer();
  if (!st.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf(
      "%8u %7u %10llu %10llu %11llu %12llu\n", clients, shared_pages,
      (unsigned long long)(system->metrics().Get(
                               "server.coordinated_page_recoveries") -
                           sessions0),
      (unsigned long long)(system->metrics().Get("server.ordered_fetches") -
                           ordered0),
      (unsigned long long)(system->channel().total_messages() - msgs0),
      (unsigned long long)(system->clock().now_us() - time0));
}

}  // namespace

int main() {
  std::printf("E5: server restart recovery, multi-client shared pages\n");
  std::printf("%8s %7s %10s %10s %11s %12s\n", "clients", "pages",
              "replays", "handshakes", "rec_msgs", "rec_sim_us");
  for (uint32_t n : {2u, 4u, 8u}) {
    RunOne(n, 4);
    RunOne(n, 16);
  }
  return 0;
}
