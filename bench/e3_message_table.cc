// E3 -- Message complexity by type for the three same-page policies
// (Section 3.1: the update-token approach "tends to be communication
// intensive due to the synchronization messages").
//
// Fixed SHARED-HOT run; the table reports messages per 1000 committed
// transactions, broken down by message type.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

std::map<std::string, double> RunOne(LockGranularity granularity,
                                     SamePageUpdatePolicy same_page,
                                     uint64_t* commits) {
  SystemConfig config = BenchConfig("e3");
  config.num_clients = 4;
  config.lock_granularity = granularity;
  config.same_page_policy = same_page;
  auto system = MustCreate(config);

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 60;
  options.ops_per_txn = 6;
  options.write_fraction = 0.8;
  options.pattern = AccessPattern::kSharedHot;
  options.shared_pages = 4;
  options.seed = 11;
  Workload workload(system.get(), &oracle, options);
  (void)workload.Run();
  *commits = workload.stats().commits;

  std::map<std::string, double> out;
  double scale = 1000.0 / double(*commits ? *commits : 1);
  for (int t = 0; t < static_cast<int>(MessageType::kMaxMessageType); ++t) {
    const auto& s = system->channel().stats(static_cast<MessageType>(t));
    if (s.count > 0) {
      out[MessageTypeName(static_cast<MessageType>(t))] = s.count * scale;
    }
  }
  out["TOTAL"] = system->channel().total_messages() * scale;
  return out;
}

}  // namespace

int main() {
  uint64_t commits;
  auto merge = RunOne(LockGranularity::kObject,
                      SamePageUpdatePolicy::kMergeCopies, &commits);
  auto token = RunOne(LockGranularity::kObject,
                      SamePageUpdatePolicy::kUpdateToken, &commits);
  auto page = RunOne(LockGranularity::kPage,
                     SamePageUpdatePolicy::kMergeCopies, &commits);

  std::printf("E3: messages per 1000 committed txns (SHARED-HOT, 4 clients)\n");
  std::printf("%-22s %14s %14s %14s\n", "message type", "merge-copies",
              "update-token", "page-locking");
  std::map<std::string, int> all;
  for (const auto& [k, v] : merge) all[k] = 1;
  for (const auto& [k, v] : token) all[k] = 1;
  for (const auto& [k, v] : page) all[k] = 1;
  for (const auto& [k, one] : all) {
    if (k == "TOTAL") continue;
    auto get = [&](std::map<std::string, double>& m) {
      auto it = m.find(k);
      return it == m.end() ? 0.0 : it->second;
    };
    std::printf("%-22s %14.1f %14.1f %14.1f\n", k.c_str(), get(merge),
                get(token), get(page));
  }
  std::printf("%-22s %14.1f %14.1f %14.1f\n", "TOTAL", merge["TOTAL"],
              token["TOTAL"], page["TOTAL"]);
  return 0;
}
