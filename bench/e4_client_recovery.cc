// E4 -- Client crash recovery cost (Section 3.3, advantages 2 and 5).
//
// Claims: client restart is handled exclusively by the client from its own
// private log (no log merging, no other client involved), and only pages
// with a DCT entry need recovery -- pages whose updates reached the disk
// (and whose exclusive locks were relinquished) are skipped entirely.
//
// The client commits one update on each of D pages. For F of them, the
// "flushed" subset, another client then reads the object (downgrading the
// writer's lock) and the server forces the page -- dropping the DCT entry.
// The remaining D - F pages stay dirty only in the crashed client's cache
// and log. Restart must fetch and redo exactly those D - F pages.

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

void RunOne(uint32_t dirty_pages, uint32_t flushed_pages) {
  SystemConfig config = BenchConfig("e4");
  config.num_clients = 2;
  config.num_pages = 128;
  config.preloaded_pages = 96;
  config.client_cache_pages = dirty_pages + 8;
  config.server_cache_pages = dirty_pages + 16;
  auto system = MustCreate(config);
  Client& c0 = system->client(0);
  Client& c1 = system->client(1);

  // Phase 1: the to-be-flushed subset. Commit, ship, downgrade (via a read
  // from client 1) and force -- the server then drops the DCT entries.
  for (uint32_t i = 0; i < flushed_pages; ++i) {
    PageId p(i);
    TxnId txn = c0.Begin().value();
    (void)c0.Write(txn, ObjectId{p, 0}, std::string(config.object_size, 'f'));
    (void)c0.Commit(txn);
  }
  (void)c0.ShipAllDirtyPages();
  for (uint32_t i = 0; i < flushed_pages; ++i) {
    PageId p(i);
    TxnId txn = c1.Begin().value();
    (void)c1.Read(txn, ObjectId{p, 0});
    (void)c1.Commit(txn);
    (void)system->server().ForcePage(ClientId(0), p);
  }

  // Phase 2: pages that are dirty only at the client when it crashes.
  for (uint32_t i = flushed_pages; i < dirty_pages; ++i) {
    PageId p(i);
    TxnId txn = c0.Begin().value();
    (void)c0.Write(txn, ObjectId{p, 0}, std::string(config.object_size, 'd'));
    (void)c0.Commit(txn);
  }

  (void)system->CrashClient(0);
  uint64_t msgs0 = system->channel().total_messages();
  uint64_t time0 = system->clock().now_us();
  uint64_t fetches0 = system->metrics().Get("client.recovery_page_fetches");
  uint64_t redo0 = system->metrics().Get("client.redos");
  Status st = system->RecoverClient(0);
  if (!st.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", st.ToString().c_str());
    return;
  }
  std::printf(
      "%6u %8u %14llu %7llu %10llu %12llu\n", dirty_pages, flushed_pages,
      (unsigned long long)(system->metrics().Get("client.recovery_page_fetches") -
                           fetches0),
      (unsigned long long)(system->metrics().Get("client.redos") - redo0),
      (unsigned long long)(system->channel().total_messages() - msgs0),
      (unsigned long long)(system->clock().now_us() - time0));
}

}  // namespace

int main() {
  std::printf("E4: client crash recovery (pages fetched ~= dirty - flushed)\n");
  std::printf("%6s %8s %14s %7s %10s %12s\n", "dirty", "flushed",
              "pages_fetched", "redos", "rec_msgs", "rec_sim_us");
  RunOne(4, 0);
  RunOne(16, 0);
  RunOne(16, 8);
  RunOne(16, 16);
  RunOne(48, 0);
  RunOne(48, 24);
  RunOne(48, 48);
  return 0;
}
