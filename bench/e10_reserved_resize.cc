// E10 -- Ablation of the footnote-3 extension: reserved-capacity objects
// make size changes mergeable.
//
// The paper (Section 3.1, footnote 3) notes that object size modifications
// "could be made mergeable by ... reserving in advance enough space" but
// leaves it unexplored. This experiment implements it: each client
// repeatedly resizes its own objects on shared pages. Without reservation
// every resize takes a page-level exclusive lock (structural), serializing
// the clients; with reservation the resizes stay in place under object
// locks and proceed concurrently. The price is page space (the reserve).

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

void RunOne(double reserve, uint32_t clients) {
  SystemConfig config = BenchConfig("e10");
  config.num_clients = clients;
  config.resize_reserve = reserve;
  config.preloaded_pages = 4;
  auto system = MustCreate(config);

  // Setup: each client creates 4 documents on the shared page set.
  const int kDocs = 4;
  std::vector<std::vector<ObjectId>> docs(clients);
  for (uint32_t c = 0; c < clients; ++c) {
    TxnId txn = system->client(c).Begin().value();
    for (int d = 0; d < kDocs; ++d) {
      auto oid = system->client(c).Create(
          txn, static_cast<PageId>(d % 4), std::string(40, 'a' + c));
      if (oid.ok()) docs[c].push_back(oid.value());
    }
    (void)system->client(c).Commit(txn);
  }

  // Interleaved resize rounds: grow/shrink within 1.5x of the base size.
  const int kRounds = 20;
  uint64_t stalls = 0;
  uint64_t commits = 0;
  uint64_t time0 = system->clock().now_us();
  for (int round = 0; round < kRounds; ++round) {
    std::vector<TxnId> txns(clients);
    for (uint32_t c = 0; c < clients; ++c) {
      txns[c] = system->client(c).Begin().value();
    }
    for (int d = 0; d < kDocs; ++d) {
      for (uint32_t c = 0; c < clients; ++c) {
        if (d >= static_cast<int>(docs[c].size())) continue;
        size_t size = 30 + ((round * 7 + c * 3 + d) % 30);
        Status st = system->client(c).Resize(txns[c], docs[c][d],
                                             std::string(size, 'r'));
        for (int retry = 0; st.IsWouldBlock() && retry < 50; ++retry) {
          ++stalls;
          st = system->client(c).Resize(txns[c], docs[c][d],
                                        std::string(size, 'r'));
        }
      }
    }
    for (uint32_t c = 0; c < clients; ++c) {
      if (system->client(c).Commit(txns[c]).ok()) ++commits;
    }
  }
  double sim_s = (system->clock().now_us() - time0) / 1e6;
  std::printf("%8.2f %8u %8llu %8llu %14llu %11.1f\n", reserve, clients,
              (unsigned long long)commits, (unsigned long long)stalls,
              (unsigned long long)system->metrics().Get(
                  "client.resizes_in_place"),
              sim_s > 0 ? commits / sim_s : 0.0);
}

}  // namespace

int main() {
  std::printf("E10: resize contention with/without capacity reservation\n");
  std::printf("%8s %8s %8s %8s %14s %11s\n", "reserve", "clients", "commits",
              "stalls", "in_place", "txns/sim_s");
  for (uint32_t n : {2u, 4u}) {
    RunOne(0.0, n);
    RunOne(0.5, n);
    RunOne(1.0, n);
  }
  return 0;
}
