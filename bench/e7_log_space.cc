// E7 -- Log space management (Section 3.6).
//
// Claim: a client with a bounded private log stays live by asking the
// server to force the page with the minimum RedoLSN; the flush notification
// advances the DPT RedoLSN and unpins the log tail. The sweep shows the
// page-force overhead growing as the log shrinks, while every run completes
// the same transaction count.

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

void RunOne(uint64_t capacity) {
  SystemConfig config = BenchConfig("e7");
  config.num_clients = 1;
  config.client_log_capacity = capacity;
  auto system = MustCreate(config);
  Client& c = system->client(0);
  const int kTxns = 300;

  uint64_t time0 = system->clock().now_us();
  int commits = 0;
  for (int i = 0; i < kTxns; ++i) {
    TxnId txn = c.Begin().value();
    ObjectId oid{static_cast<PageId>(i % 16), static_cast<SlotId>(i % 8)};
    Status w = c.Write(txn, oid, std::string(config.object_size, 'a' + i % 26));
    if (w.ok() && c.Commit(txn).ok()) {
      ++commits;
    } else if (!w.ok()) {
      (void)c.Abort(txn);
    }
  }
  double sim_s = (system->clock().now_us() - time0) / 1e6;
  std::printf("%10llu %8d %10llu %12llu %13llu %11.1f\n",
              (unsigned long long)capacity, commits,
              (unsigned long long)system->metrics().Get("client.log_full_events"),
              (unsigned long long)system->metrics().Get("client.log_space_forces"),
              (unsigned long long)system->metrics().Get("server.disk_writes"),
              sim_s > 0 ? commits / sim_s : 0);
}

}  // namespace

int main() {
  std::printf("E7: bounded private log -- Section 3.6 protocol (300 txns)\n");
  std::printf("%10s %8s %10s %12s %13s %11s\n", "log_bytes", "commits",
              "log_fulls", "page_forces", "disk_writes", "txns/sim_s");
  RunOne(8 * 1024);
  RunOne(16 * 1024);
  RunOne(32 * 1024);
  RunOne(128 * 1024);
  RunOne(0);  // Unbounded.
  return 0;
}
