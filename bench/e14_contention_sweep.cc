// E14 -- Contention sweep: clients x Zipf skew.
//
// The scalable workload generator (core/workload_gen.h) drives a grid of
// client counts x Zipf thetas, each cell a mixed skewed phase followed by a
// hot-page merge storm, with leases and group commit enabled so every
// mechanism the later scaling work depends on is exercised and measured:
//
//   txns_per_sim_sec        -- end-to-end modeled throughput
//   callbacks_per_txn       -- lock callback pressure (object + page)
//   merges_per_txn          -- PSN copy-merge rate (Section 3.1 traffic)
//   lease_renewals_per_sec  -- heartbeat load on the server lease table
//   group_commit_fill       -- mean txns per group force / configured max
//
// Output is committed as BENCH_e14_contention.json; tools/bench_gate.py
// diffs a fresh run against it in CI (tools/bench_tolerances.json holds the
// per-metric bands), so a hot-path regression on any of these fails the
// build. All numbers come from the deterministic simulation: reruns are
// byte-identical.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/workload_gen.h"
#include "util/metrics.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

constexpr uint32_t kGroupCommitMax = 4;

struct Cell {
  uint32_t clients;
  double theta;
  uint64_t commits;
  uint64_t aborts;
  uint64_t callbacks;
  uint64_t merges;
  uint64_t renewals;
  double txns_per_sim_sec;
  double callbacks_per_txn;
  double merges_per_txn;
  double lease_renewals_per_sec;
  double group_commit_fill;
};

Cell RunCell(uint32_t clients, double theta) {
  SystemConfig config = BenchConfig("e14_c" + std::to_string(clients) + "_t" +
                                    std::to_string(int(theta * 10)));
  config.num_clients = clients;
  config.page_size = 2048;
  config.num_pages = 96;
  config.preloaded_pages = 64;
  config.objects_per_page = 16;
  config.object_size = 64;
  config.client_cache_pages = 16;
  config.server_cache_pages = 96;
  // Leases on: renewals ride piggybacked heartbeats. The lease must out-
  // last a full driver round even at 64 clients (every client's step can
  // advance the simulated clock), so it is deliberately generous.
  config.heartbeat_interval_us = 5000;
  config.lease_duration_us = 60ull * 1000 * 1000;
  // Group commit on: the fill metric is how full windows run under load.
  config.group_commit_window = 1000ull * 1000 * 1000;
  config.group_commit_max_txns = kGroupCommitMax;

  auto system = MustCreate(config);
  Oracle oracle;

  // Total committed work is held roughly constant across client counts so
  // cells measure contention, not workload size.
  uint32_t txns = std::max<uint32_t>(2, 96 / clients);

  WorkloadGenOptions gen_options;
  gen_options.seed = 1400 + clients;
  PhaseOptions mixed;
  mixed.kind = PhaseKind::kMixed;
  mixed.txns_per_client = txns;
  mixed.ops_per_txn = 4;
  mixed.write_fraction = 0.6;
  mixed.zipf_theta = theta;
  PhaseOptions storm;
  storm.kind = PhaseKind::kMergeStorm;
  storm.txns_per_client = std::max<uint32_t>(1, txns / 2);
  storm.ops_per_txn = 4;
  storm.write_fraction = 0.8;
  storm.storm_pages = 4;
  gen_options.phases = {mixed, storm};

  WorkloadGen gen(system.get(), &oracle, gen_options);
  if (Status st = gen.Run(); !st.ok()) {
    std::fprintf(stderr, "e14: cell clients=%u theta=%.1f failed: %s\n",
                 clients, theta, st.ToString().c_str());
    std::abort();
  }
  // Close any partially filled commit windows before reading fill stats.
  for (uint32_t i = 0; i < clients; ++i) {
    if (Status st = system->client(i).FlushCommitGroup(); !st.ok()) {
      std::fprintf(stderr, "e14: flush group: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  if (!mismatches.ok() || mismatches.value() != 0) {
    std::fprintf(stderr, "e14: oracle divergence in cell clients=%u\n",
                 clients);
    std::abort();
  }

  WorkloadStats totals = gen.TotalWorkloadStats();
  Metrics& m = system->metrics();
  Cell cell;
  cell.clients = clients;
  cell.theta = theta;
  cell.commits = totals.commits;
  cell.aborts = totals.aborts;
  cell.callbacks = 0;
  cell.merges = 0;
  cell.renewals = 0;
  uint64_t group_commits = 0, group_txns = 0;
  for (const PhaseGenStats& ps : gen.phase_stats()) {
    cell.callbacks += ps.callbacks;
    cell.merges += ps.merges;
    cell.renewals += ps.lease_renewals;
    group_commits += ps.group_commits;
    group_txns += ps.group_commit_txns;
  }
  // The flush above closes windows after the last phase; fold it in from
  // the global counters so fill reflects every force.
  group_commits = m.Get(Counter::kClientGroupCommits);
  group_txns = m.Get(Counter::kClientGroupCommitTxns);
  double sim_sec = double(totals.sim_time_us) / 1e6;
  cell.txns_per_sim_sec = sim_sec > 0 ? double(cell.commits) / sim_sec : 0;
  cell.callbacks_per_txn =
      cell.commits > 0 ? double(cell.callbacks) / double(cell.commits) : 0;
  cell.merges_per_txn =
      cell.commits > 0 ? double(cell.merges) / double(cell.commits) : 0;
  cell.lease_renewals_per_sec =
      sim_sec > 0 ? double(cell.renewals) / sim_sec : 0;
  cell.group_commit_fill =
      group_commits > 0
          ? double(group_txns) / double(group_commits) / kGroupCommitMax
          : 0;
  return cell;
}

}  // namespace

int main() {
  BenchJson json("e14_contention");
  std::printf("E14: contention sweep (clients x Zipf theta; mixed + storm)\n");
  std::printf("%-8s %6s %8s %8s %10s %12s %10s %14s %10s\n", "clients",
              "theta", "commits", "aborts", "cbs/txn", "merges/txn",
              "renew/s", "txns/sim_sec", "gc_fill");
  for (uint32_t clients : {4u, 16u, 64u}) {
    for (double theta : {0.0, 0.8, 1.2}) {
      Cell c = RunCell(clients, theta);
      std::printf("%-8u %6.1f %8llu %8llu %10.3f %12.3f %10.1f %14.1f %10.3f\n",
                  c.clients, c.theta,
                  static_cast<unsigned long long>(c.commits),
                  static_cast<unsigned long long>(c.aborts),
                  c.callbacks_per_txn, c.merges_per_txn,
                  c.lease_renewals_per_sec, c.txns_per_sim_sec,
                  c.group_commit_fill);
      json.BeginRow();
      json.Field("clients", uint64_t{c.clients});
      json.Field("zipf_theta", c.theta);
      json.Field("commits", c.commits);
      json.Field("aborts", c.aborts);
      json.Field("callbacks_per_txn", c.callbacks_per_txn);
      json.Field("merges_per_txn", c.merges_per_txn);
      json.Field("lease_renewals_per_sec", c.lease_renewals_per_sec);
      json.Field("txns_per_sim_sec", c.txns_per_sim_sec);
      json.Field("group_commit_fill", c.group_commit_fill);
    }
  }
  return json.Write() ? 0 : 1;
}
