// E6 -- Complex crash matrix (Section 3.5).
//
// Claim (Section 1): "the database state is recovered correctly even if the
// server and several clients crash at the same time". Each row runs a
// randomized mixed workload, injects the crash combination, recovers, and
// verifies every committed object against the oracle. `ok` must be yes on
// every row; the cost columns show how recovery work scales with the blast
// radius.

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

void RunOne(const char* label, uint32_t crash_clients, bool crash_server) {
  SystemConfig config = BenchConfig("e6");
  config.num_clients = 4;
  auto system = MustCreate(config);

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 25;
  options.ops_per_txn = 5;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 99;
  Workload workload(system.get(), &oracle, options);
  (void)workload.RunSteps(300);

  for (uint32_t i = 0; i < crash_clients; ++i) {
    (void)system->CrashClient(i);
    oracle.CrashClient(ClientId(i));
    workload.OnClientCrashed(i);
  }
  if (crash_server) (void)system->CrashServer();

  uint64_t msgs0 = system->channel().total_messages();
  uint64_t time0 = system->clock().now_us();
  Status st = system->RecoverAll();
  uint64_t rec_msgs = system->channel().total_messages() - msgs0;
  uint64_t rec_us = system->clock().now_us() - time0;

  for (size_t i = 0; i < system->num_clients(); ++i) {
    workload.OnClientRecovered(i);
  }
  (void)workload.Run();
  (void)system->FlushEverything();
  auto mismatches = oracle.Verify(system.get(), 3);
  bool ok = st.ok() && mismatches.ok() && mismatches.value() == 0;
  std::printf("%-22s %4s %10llu %12llu %10llu\n", label, ok ? "yes" : "NO",
              (unsigned long long)rec_msgs, (unsigned long long)rec_us,
              (unsigned long long)(mismatches.ok() ? mismatches.value() : 999));
}

}  // namespace

int main() {
  std::printf("E6: crash matrix -- correctness and recovery cost\n");
  std::printf("%-22s %4s %10s %12s %10s\n", "scenario", "ok", "rec_msgs",
              "rec_sim_us", "mismatches");
  RunOne("1 client", 1, false);
  RunOne("2 clients", 2, false);
  RunOne("server", 0, true);
  RunOne("server + 1 client", 1, true);
  RunOne("server + 2 clients", 2, true);
  RunOne("server + all clients", 4, true);
  return 0;
}
