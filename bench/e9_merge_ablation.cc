// E9 -- Ablation microbenchmarks (google-benchmark).
//
// (a) Merging page *copies* vs merging *log records* (Section 3.1: the paper
//     rejects log-record merging [19, 2] as "expensive and I/O intensive"
//     and chooses copy merging, which costs CPU only).
// (b) The PSN merge bump (max+1): how cheap the bookkeeping is that makes
//     equal-PSN copies distinguishable (Section 2).

#include <benchmark/benchmark.h>

#include "log/log_record.h"
#include "server/page_merge.h"
#include "storage/page.h"

namespace finelog {
namespace {

constexpr uint32_t kPageSize = 4096;
constexpr int kSlots = 16;
constexpr int kObjectSize = 128;

Page MakeBase() {
  Page page(kPageSize);
  page.Format(PageId(1), Psn(10));
  for (int i = 0; i < kSlots; ++i) {
    (void)page.CreateObject(std::string(kObjectSize, 'a'));
  }
  return page;
}

// (a1) Copy merging: overlay K modified objects from a shipped copy.
void BM_MergePageCopies(benchmark::State& state) {
  int modified = static_cast<int>(state.range(0));
  Page base = MakeBase();
  Page remote = base;
  ShippedPage shipped;
  shipped.page = PageId(1);
  for (int i = 0; i < modified; ++i) {
    (void)remote.WriteObject(static_cast<SlotId>(i),
                             std::string(kObjectSize, 'b'));
    shipped.modified_slots.push_back(static_cast<SlotId>(i));
  }
  remote.set_psn(Psn(20));
  shipped.image = remote.raw();
  for (auto _ : state) {
    Page local = base;
    benchmark::DoNotOptimize(MergeShippedPage(&local, shipped));
  }
  state.SetItemsProcessed(state.iterations() * modified);
}
BENCHMARK(BM_MergePageCopies)->Arg(1)->Arg(4)->Arg(16);

// (a2) Log-record merging: decode and apply K update records, the rejected
// alternative. (A real implementation would also pay log I/O to read the
// other node's records; this measures the pure CPU floor.)
void BM_MergeLogRecords(benchmark::State& state) {
  int records = static_cast<int>(state.range(0));
  Page base = MakeBase();
  std::vector<std::string> encoded;
  for (int i = 0; i < records; ++i) {
    LogRecord rec = LogRecord::Update(
        TxnId(1), kNullLsn, PageId(1), static_cast<SlotId>(i % kSlots),
        UpdateOp::kOverwrite, Psn(10 + i), std::string(kObjectSize, 'b'),
        std::string(kObjectSize, 'a'));
    encoded.push_back(rec.Encode());
  }
  for (auto _ : state) {
    Page local = base;
    for (const std::string& bytes : encoded) {
      auto rec = LogRecord::Decode(bytes);
      benchmark::DoNotOptimize(
          local.WriteObject(rec.value().slot, rec.value().redo));
    }
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_MergeLogRecords)->Arg(1)->Arg(4)->Arg(16);

// (b) The merge PSN bookkeeping alone.
void BM_PsnMergeBump(benchmark::State& state) {
  Page a = MakeBase();
  Page b = MakeBase();
  for (auto _ : state) {
    Psn merged = Psn::Merge(a.psn(), b.psn());
    a.set_psn(merged);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_PsnMergeBump);

// Supporting micro: full page round trip through the checksum (disk path).
void BM_PageChecksum(benchmark::State& state) {
  Page page = MakeBase();
  for (auto _ : state) {
    page.UpdateChecksum();
    benchmark::DoNotOptimize(page.VerifyChecksum());
  }
  state.SetBytesProcessed(state.iterations() * kPageSize * 2);
}
BENCHMARK(BM_PageChecksum);

// Supporting micro: log record encode/decode (the private-log write path).
void BM_LogRecordRoundTrip(benchmark::State& state) {
  LogRecord rec = LogRecord::Update(TxnId(1), Lsn(100), PageId(5), 3,
                                    UpdateOp::kOverwrite, Psn(42),
                                    std::string(kObjectSize, 'r'),
                                    std::string(kObjectSize, 'u'));
  for (auto _ : state) {
    std::string bytes = rec.Encode();
    benchmark::DoNotOptimize(LogRecord::Decode(bytes));
  }
}
BENCHMARK(BM_LogRecordRoundTrip);

}  // namespace
}  // namespace finelog

BENCHMARK_MAIN();
