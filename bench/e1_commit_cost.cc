// E1 -- Commit-time network cost: client-local logging (the paper) vs
// ARIES/CSA-style log shipping [18] vs Versant-style page shipping [24].
//
// Claim (Sections 1, 4.1, advantage 1): commit is a purely local log force
// under client-based logging; the baselines pay a message round trip plus
// log-record or page payloads on every commit. Group commit amortizes even
// the local force across up to group_commit_max_txns transactions.
//
// One client runs update transactions of varying size; we report the
// commit-path messages and bytes per transaction, log forces per
// transaction, and the simulated time per commit.

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

struct Row {
  LoggingPolicy policy;
  uint32_t txn_size;
  uint32_t group_commit;  // group_commit_max_txns, 0 = disabled.
  double msgs_per_commit;
  double bytes_per_commit;
  double forces_per_commit;
  double us_per_commit;
};

Row RunOne(LoggingPolicy policy, uint32_t txn_size, uint32_t group_commit) {
  SystemConfig config = BenchConfig("e1");
  config.num_clients = 1;
  config.logging_policy = policy;
  if (group_commit > 0) {
    // A window far larger than any run: only the txn-count trigger fires,
    // so forces/commit measures pure group-commit amortization.
    config.group_commit_window = 1000ull * 1000 * 1000;
    config.group_commit_max_txns = group_commit;
  }
  auto system = MustCreate(config);
  Client& c = system->client(0);
  const int kTxns = 50;

  // Warm the cache and locks so only commit-path costs differ.
  {
    TxnId txn = c.Begin().value();
    for (uint32_t k = 0; k < txn_size; ++k) {
      ObjectId oid{static_cast<PageId>(k / 16 % 48),
                   static_cast<SlotId>(k % 16)};
      (void)c.Write(txn, oid, std::string(config.object_size, 'w'));
    }
    (void)c.Commit(txn);
    (void)c.FlushCommitGroup();
  }

  uint64_t msgs0 = system->channel().total_messages();
  uint64_t bytes0 = system->channel().total_bytes();
  uint64_t forces0 = c.log().force_count();
  uint64_t time0 = system->clock().now_us();
  for (int i = 0; i < kTxns; ++i) {
    TxnId txn = c.Begin().value();
    for (uint32_t k = 0; k < txn_size; ++k) {
      ObjectId oid{static_cast<PageId>(k / 16 % 48),
                   static_cast<SlotId>(k % 16)};
      (void)c.Write(txn, oid, std::string(config.object_size, 'a' + i % 26));
    }
    (void)c.Commit(txn);
  }
  // Close the final, partially-filled group so its force is part of the
  // measured cost.
  (void)c.FlushCommitGroup();
  Row row;
  row.policy = policy;
  row.txn_size = txn_size;
  row.group_commit = group_commit;
  row.msgs_per_commit =
      double(system->channel().total_messages() - msgs0) / kTxns;
  row.bytes_per_commit =
      double(system->channel().total_bytes() - bytes0) / kTxns;
  row.forces_per_commit = double(c.log().force_count() - forces0) / kTxns;
  row.us_per_commit = double(system->clock().now_us() - time0) / kTxns;
  return row;
}

void Emit(BenchJson* json, const Row& r) {
  std::printf("%-14s %8u %6u %12.2f %14.1f %9.2f %14.1f\n", PolicyName(r.policy),
              r.txn_size, r.group_commit, r.msgs_per_commit, r.bytes_per_commit,
              r.forces_per_commit, r.us_per_commit);
  json->BeginRow();
  json->Field("policy", PolicyName(r.policy));
  json->Field("txn_size", uint64_t{r.txn_size});
  json->Field("group_commit_max_txns", uint64_t{r.group_commit});
  json->Field("msgs_per_commit", r.msgs_per_commit);
  json->Field("bytes_per_commit", r.bytes_per_commit);
  json->Field("forces_per_commit", r.forces_per_commit);
  json->Field("us_per_commit", r.us_per_commit);
}

}  // namespace

int main() {
  BenchJson json("e1_commit_cost");
  std::printf("E1: commit-path cost per transaction (1 client, warm cache)\n");
  std::printf("%-14s %8s %6s %12s %14s %9s %14s\n", "policy", "txn_size",
              "group", "msgs/commit", "bytes/commit", "forces", "sim_us/commit");
  for (LoggingPolicy policy :
       {LoggingPolicy::kClientLocal, LoggingPolicy::kShipLogsAtCommit,
        LoggingPolicy::kShipPagesAtCommit}) {
    for (uint32_t size : {1u, 4u, 16u, 64u}) {
      Emit(&json, RunOne(policy, size, /*group_commit=*/0));
    }
  }
  // Group commit applies to the client-local policy: one force per window of
  // up to N commits.
  for (uint32_t group : {2u, 8u}) {
    for (uint32_t size : {1u, 4u}) {
      Emit(&json, RunOne(LoggingPolicy::kClientLocal, size, group));
    }
  }
  return json.Write() ? 0 : 1;
}
