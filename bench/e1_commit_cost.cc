// E1 -- Commit-time network cost: client-local logging (the paper) vs
// ARIES/CSA-style log shipping [18] vs Versant-style page shipping [24].
//
// Claim (Sections 1, 4.1, advantage 1): commit is a purely local log force
// under client-based logging; the baselines pay a message round trip plus
// log-record or page payloads on every commit.
//
// One client runs update transactions of varying size; we report the
// commit-path messages and bytes per transaction and the simulated time per
// commit.

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

struct Row {
  LoggingPolicy policy;
  uint32_t txn_size;
  double msgs_per_commit;
  double bytes_per_commit;
  double us_per_commit;
};

Row RunOne(LoggingPolicy policy, uint32_t txn_size) {
  SystemConfig config = BenchConfig("e1");
  config.num_clients = 1;
  config.logging_policy = policy;
  auto system = MustCreate(config);
  Client& c = system->client(0);
  const int kTxns = 50;

  // Warm the cache and locks so only commit-path costs differ.
  {
    TxnId txn = c.Begin().value();
    for (uint32_t k = 0; k < txn_size; ++k) {
      ObjectId oid{static_cast<PageId>(k / 16 % 48),
                   static_cast<SlotId>(k % 16)};
      (void)c.Write(txn, oid, std::string(config.object_size, 'w'));
    }
    (void)c.Commit(txn);
  }

  uint64_t msgs0 = system->channel().total_messages();
  uint64_t bytes0 = system->channel().total_bytes();
  uint64_t time0 = system->clock().now_us();
  for (int i = 0; i < kTxns; ++i) {
    TxnId txn = c.Begin().value();
    for (uint32_t k = 0; k < txn_size; ++k) {
      ObjectId oid{static_cast<PageId>(k / 16 % 48),
                   static_cast<SlotId>(k % 16)};
      (void)c.Write(txn, oid, std::string(config.object_size, 'a' + i % 26));
    }
    (void)c.Commit(txn);
  }
  Row row;
  row.policy = policy;
  row.txn_size = txn_size;
  row.msgs_per_commit =
      double(system->channel().total_messages() - msgs0) / kTxns;
  row.bytes_per_commit =
      double(system->channel().total_bytes() - bytes0) / kTxns;
  row.us_per_commit = double(system->clock().now_us() - time0) / kTxns;
  return row;
}

}  // namespace

int main() {
  std::printf("E1: commit-path cost per transaction (1 client, warm cache)\n");
  std::printf("%-14s %8s %14s %16s %14s\n", "policy", "txn_size",
              "msgs/commit", "bytes/commit", "sim_us/commit");
  for (LoggingPolicy policy :
       {LoggingPolicy::kClientLocal, LoggingPolicy::kShipLogsAtCommit,
        LoggingPolicy::kShipPagesAtCommit}) {
    for (uint32_t size : {1u, 4u, 16u, 64u}) {
      Row r = RunOne(policy, size);
      std::printf("%-14s %8u %14.2f %16.1f %14.1f\n", PolicyName(r.policy),
                  r.txn_size, r.msgs_per_commit, r.bytes_per_commit,
                  r.us_per_commit);
    }
  }
  return 0;
}
