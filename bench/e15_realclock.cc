// E15 -- Real-clock concurrent execution (DESIGN.md section 17).
//
// Every other experiment measures the protocol under the deterministic
// simulation: costs are modeled, results are byte-reproducible. E15 runs the
// SAME protocol stack against the wall clock -- ExecMode::kRealClock gives
// every client its own thread, routes every RPC through the QueueTransport
// reactor, and ends every log force in a real fdatasync -- and reports what
// an actual deployment of the paper's design would observe: committed
// transactions per wall-clock second, commit latency percentiles, and
// fsyncs per second.
//
// Workload: each client thread runs kTxnsPerClient update transactions
// against its own private pages (the scaling dimension under study is the
// shared server/reactor/log path, not data contention -- E14 sweeps
// contention). Swept: clients {4, 16, 64} x message batching {1, 8} x group
// commit {off, 8 txns}.
//
// Wall-clock numbers are inherently machine-dependent, so every metric of
// this experiment is registered as *advisory* in tools/bench_tolerances.json:
// the perf gate reports drift but never fails on it.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "log/log_sink.h"
#include "net/transport.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

constexpr int kTxnsPerClient = 20;
constexpr uint32_t kPagesPerClient = 2;

struct Row {
  uint32_t clients;
  uint32_t batch;
  uint32_t group;
  double wall_ms;
  double txns_per_sec;
  double commit_p50_us;
  double commit_p99_us;
  double fsyncs_per_sec;
  uint64_t frames_executed;
};

void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "e15: %s failed: %s\n", what, st.ToString().c_str());
    std::abort();
  }
}

uint64_t Percentile(std::vector<uint64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_us.size()));
  if (idx >= sorted_us.size()) idx = sorted_us.size() - 1;
  return sorted_us[idx];
}

Row RunOne(uint32_t clients, uint32_t batch, uint32_t group) {
  SystemConfig config = BenchConfig("e15");
  config.exec_mode = ExecMode::kRealClock;
  config.num_clients = clients;
  config.num_pages = clients * kPagesPerClient + 32;
  config.preloaded_pages = config.num_pages;
  config.client_cache_pages = kPagesPerClient + 8;
  config.server_cache_pages = config.num_pages;
  config.max_batch_items = batch;
  if (group > 0) {
    config.group_commit_window = 1000ull * 1000 * 1000;
    config.group_commit_max_txns = group;
  }
  auto system = MustCreate(config);

  const uint64_t syncs0 = system->log_sink()->sync_count();
  std::vector<std::vector<uint64_t>> latencies(clients);

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (uint32_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      Client& c = system->client(i);
      latencies[i].reserve(kTxnsPerClient);
      for (int t = 0; t < kTxnsPerClient; ++t) {
        TxnId txn = c.Begin().value();
        std::vector<std::pair<ObjectId, std::string>> writes;
        writes.reserve(kPagesPerClient);
        for (uint32_t j = 0; j < kPagesPerClient; ++j) {
          ObjectId oid{static_cast<PageId>(i * kPagesPerClient + j),
                       static_cast<SlotId>(t % 8)};
          writes.emplace_back(oid,
                              std::string(config.object_size, 'a' + t % 26));
        }
        Must(c.WriteBatch(txn, writes), "WriteBatch");
        const auto c0 = std::chrono::steady_clock::now();
        Must(c.Commit(txn), "Commit");
        const auto c1 = std::chrono::steady_clock::now();
        latencies[i].push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(c1 - c0)
                .count()));
      }
      // Close any open commit group so every transaction is durable before
      // the clock stops.
      Must(c.FlushCommitGroup(), "FlushCommitGroup");
    });
  }
  for (auto& t : threads) t.join();
  const auto wall1 = std::chrono::steady_clock::now();

  const double wall_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(wall1 - wall0)
          .count());
  const double wall_sec = wall_us / 1e6;
  const uint64_t syncs = system->log_sink()->sync_count() - syncs0;
  const uint64_t txns = uint64_t{clients} * kTxnsPerClient;

  std::vector<uint64_t> all;
  all.reserve(txns);
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  Row row;
  row.clients = clients;
  row.batch = batch;
  row.group = group;
  row.wall_ms = wall_us / 1e3;
  row.txns_per_sec = static_cast<double>(txns) / wall_sec;
  row.commit_p50_us = static_cast<double>(Percentile(all, 0.50));
  row.commit_p99_us = static_cast<double>(Percentile(all, 0.99));
  row.fsyncs_per_sec = static_cast<double>(syncs) / wall_sec;
  row.frames_executed = system->transport()->frames_executed();
  return row;
}

}  // namespace

int main() {
  std::printf(
      "E15: real-clock concurrent execution "
      "(%d txns/client, %u pages/client)\n\n",
      kTxnsPerClient, kPagesPerClient);
  std::printf(
      "%8s %6s %6s %10s %12s %12s %12s %12s\n", "clients", "batch", "group",
      "wall_ms", "txns/s", "p50_us", "p99_us", "fsync/s");

  BenchJson json("e15_realclock");
  for (uint32_t clients : {4u, 16u, 64u}) {
    for (uint32_t batch : {1u, 8u}) {
      for (uint32_t group : {0u, 8u}) {
        Row row = RunOne(clients, batch, group);
        std::printf("%8u %6u %6u %10.1f %12.1f %12.1f %12.1f %12.1f\n",
                    row.clients, row.batch, row.group, row.wall_ms,
                    row.txns_per_sec, row.commit_p50_us, row.commit_p99_us,
                    row.fsyncs_per_sec);
        json.BeginRow();
        json.Field("clients", static_cast<uint64_t>(row.clients));
        json.Field("max_batch_items", static_cast<uint64_t>(row.batch));
        json.Field("group_commit_max_txns", static_cast<uint64_t>(row.group));
        json.Field("wall_ms", row.wall_ms);
        json.Field("txns_per_sec", row.txns_per_sec);
        json.Field("commit_p50_us", row.commit_p50_us);
        json.Field("commit_p99_us", row.commit_p99_us);
        json.Field("fsyncs_per_sec", row.fsyncs_per_sec);
        json.Field("frames_executed", row.frames_executed);
      }
    }
  }
  return json.Write() ? 0 : 1;
}
