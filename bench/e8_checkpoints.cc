// E8 -- Independent client checkpoints vs ARIES/CSA-style synchronized
// server checkpoints (Section 4.1, advantage 6: "each client can take a
// checkpoint without synchronizing with the rest of the operational
// clients").
//
// A steady workload runs while checkpoints fire periodically. The paper's
// scheme writes a local record and forces the private log (zero messages);
// the ARIES/CSA baseline performs a synchronous round trip with every
// connected client per server checkpoint.

#include <cstdio>

#include "bench/bench_util.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

void RunOne(const char* label, uint32_t clients, bool synchronized) {
  SystemConfig config = BenchConfig("e8");
  config.num_clients = clients;
  auto system = MustCreate(config);

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 30;
  options.ops_per_txn = 5;
  options.pattern = AccessPattern::kUniform;
  options.seed = 5;
  Workload workload(system.get(), &oracle, options);

  const int kCheckpoints = 10;
  uint64_t ckpt_msgs = 0;
  uint64_t ckpt_us = 0;
  for (int round = 0; round < kCheckpoints; ++round) {
    (void)workload.RunSteps(40);
    uint64_t m0 = system->channel().total_messages();
    uint64_t t0 = system->clock().now_us();
    if (synchronized) {
      (void)system->server().TakeSynchronizedCheckpoint();
    } else {
      for (uint32_t i = 0; i < clients; ++i) {
        (void)system->client(i).TakeCheckpoint();
      }
      (void)system->server().TakeCheckpoint();
    }
    ckpt_msgs += system->channel().total_messages() - m0;
    ckpt_us += system->clock().now_us() - t0;
  }
  (void)workload.Run();
  std::printf("%-14s %8u %14.1f %14.1f %10llu\n", label, clients,
              double(ckpt_msgs) / kCheckpoints, double(ckpt_us) / kCheckpoints,
              (unsigned long long)workload.stats().commits);
}

}  // namespace

int main() {
  std::printf("E8: checkpoint cost (10 checkpoints during a live workload)\n");
  std::printf("%-14s %8s %14s %14s %10s\n", "scheme", "clients", "msgs/ckpt",
              "sim_us/ckpt", "commits");
  for (uint32_t n : {2u, 4u, 8u}) {
    RunOne("independent", n, false);
    RunOne("synchronized", n, true);
  }
  return 0;
}
