// Shared helpers for the experiment harness (E1..E8). Each experiment binary
// prints a fixed-format table; EXPERIMENTS.md records and discusses the
// output. Simulated time, message and byte counts come from the accounted
// channel, so results are exactly reproducible.

#ifndef FINELOG_BENCH_BENCH_UTIL_H_
#define FINELOG_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"

namespace finelog {
namespace bench {

inline std::string FreshDir(const std::string& name) {
  std::string dir = "/tmp/finelog_bench_" + name + "_" + std::to_string(getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

inline SystemConfig BenchConfig(const std::string& name) {
  SystemConfig config;
  config.dir = FreshDir(name);
  config.num_clients = 4;
  config.page_size = 4096;
  config.num_pages = 128;
  config.preloaded_pages = 64;
  config.objects_per_page = 16;
  config.object_size = 128;
  config.client_cache_pages = 32;
  config.server_cache_pages = 96;
  return config;
}

inline std::unique_ptr<System> MustCreate(const SystemConfig& config) {
  auto sys = System::Create(config);
  if (!sys.ok()) {
    std::fprintf(stderr, "System::Create failed: %s\n",
                 sys.status().ToString().c_str());
    std::abort();
  }
  return std::move(sys).value();
}

inline const char* PolicyName(LoggingPolicy p) {
  switch (p) {
    case LoggingPolicy::kClientLocal: return "client-local";
    case LoggingPolicy::kShipLogsAtCommit: return "ship-logs";
    case LoggingPolicy::kShipPagesAtCommit: return "ship-pages";
  }
  return "?";
}

inline const char* SamePageName(SamePageUpdatePolicy p) {
  return p == SamePageUpdatePolicy::kMergeCopies ? "merge-copies"
                                                 : "update-token";
}

}  // namespace bench
}  // namespace finelog

#endif  // FINELOG_BENCH_BENCH_UTIL_H_
