// Shared helpers for the experiment harness (E1..E8). Each experiment binary
// prints a fixed-format table; EXPERIMENTS.md records and discusses the
// output. Simulated time, message and byte counts come from the accounted
// channel, so results are exactly reproducible.

#ifndef FINELOG_BENCH_BENCH_UTIL_H_
#define FINELOG_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"

namespace finelog {
namespace bench {

inline std::string FreshDir(const std::string& name) {
  std::string dir = "/tmp/finelog_bench_" + name + "_" + std::to_string(getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

inline SystemConfig BenchConfig(const std::string& name) {
  SystemConfig config;
  config.dir = FreshDir(name);
  config.num_clients = 4;
  config.page_size = 4096;
  config.num_pages = 128;
  config.preloaded_pages = 64;
  config.objects_per_page = 16;
  config.object_size = 128;
  config.client_cache_pages = 32;
  config.server_cache_pages = 96;
  return config;
}

inline std::unique_ptr<System> MustCreate(const SystemConfig& config) {
  auto sys = System::Create(config);
  if (!sys.ok()) {
    std::fprintf(stderr, "System::Create failed: %s\n",
                 sys.status().ToString().c_str());
    std::abort();
  }
  return std::move(sys).value();
}

inline const char* PolicyName(LoggingPolicy p) {
  switch (p) {
    case LoggingPolicy::kClientLocal: return "client-local";
    case LoggingPolicy::kShipLogsAtCommit: return "ship-logs";
    case LoggingPolicy::kShipPagesAtCommit: return "ship-pages";
  }
  return "?";
}

inline const char* SamePageName(SamePageUpdatePolicy p) {
  return p == SamePageUpdatePolicy::kMergeCopies ? "merge-copies"
                                                 : "update-token";
}

// Machine-readable experiment output: rows of key/value fields, written to
// BENCH_<name>.json in the current directory. All values come from the
// simulation (channel counters, simulated clock), so reruns produce
// byte-identical files; fields keep insertion order and doubles print with
// fixed precision to make that hold.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  // Starts a new row (one configuration / measurement).
  void BeginRow() { rows_.emplace_back(); }

  void Field(const std::string& key, const std::string& value) {
    rows_.back().push_back(Quote(key) + ": " + Quote(value));
  }
  void Field(const std::string& key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const std::string& key, uint64_t value) {
    rows_.back().push_back(Quote(key) + ": " + std::to_string(value));
  }
  void Field(const std::string& key, int value) {
    Field(key, static_cast<uint64_t>(value));
  }
  void Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    rows_.back().push_back(Quote(key) + ": " + buf);
  }

  // Writes {"bench": <name>, "rows": [...]} and reports the path on stdout.
  // Returns false (after printing the error) if the file cannot be written,
  // so CI can fail the run.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::string out = "{\n  \"bench\": " + Quote(name_) + ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "    {";
      for (size_t j = 0; j < rows_[i].size(); ++j) {
        if (j > 0) out += ", ";
        out += rows_[i][j];
      }
      out += i + 1 < rows_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bench
}  // namespace finelog

#endif  // FINELOG_BENCH_BENCH_UTIL_H_
