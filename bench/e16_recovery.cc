// E16 -- Instant restart: availability during lazy, demand-prioritized
// recovery (DESIGN.md section 18).
//
// N clients each commit txns_per_client transactions against three private
// pages and ship the dirty pages to the server; the server crashes before
// any flush, leaving every touched page in the restart backlog. With
// instant_restart on, restart opens admission right after membership + DCT
// replay and repairs pages on first touch; a probe loop then reads the
// backlog down, counting how many reads were served while pages were still
// unrecovered. The same cell is rerun with the feature off to get the
// eager-restart baseline, which stalls admission for the whole repair.
//
// Reported per cell (clients x log size):
//   first_admit_us      -- crash-to-admission (lazy restart)
//   fully_recovered_us  -- crash-to-empty-backlog (lazy restart)
//   eager_restart_us    -- crash-to-admission == crash-to-recovered (eager)
//   reads_before_recovered -- successful reads while backlog > 0
//   admit_speedup       -- fully_recovered_us / first_admit_us
//
// The headline claim: first_admit_us is roughly flat in clients and log
// size while fully_recovered_us (and the eager baseline) grow with both,
// so admit_speedup widens as recovery gets more expensive -- exactly when
// availability-during-recovery matters. All numbers are simulated and
// reruns are byte-identical; committed as BENCH_e16_recovery.json and
// gated by tools/bench_gate.py.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "util/metrics.h"

using namespace finelog;
using namespace finelog::bench;

namespace {

constexpr uint32_t kPagesPerClient = 3;

struct Cell {
  uint32_t clients;
  uint32_t txns_per_client;
  uint64_t pages_marked;
  uint64_t first_admit_us;
  uint64_t fully_recovered_us;
  uint64_t eager_restart_us;
  uint64_t reads_before_recovered;
  uint64_t demand_repairs;
  uint64_t sweep_repairs;
  double admit_speedup;
};

SystemConfig CellConfig(uint32_t clients, uint32_t txns, bool instant) {
  SystemConfig config = BenchConfig(
      "e16_c" + std::to_string(clients) + "_t" + std::to_string(txns) +
      (instant ? "_lazy" : "_eager"));
  config.num_clients = clients;
  config.num_pages = 256;
  config.preloaded_pages = kPagesPerClient * clients + 8;
  // Keep the whole backlog dirty in the server cache: an eviction would
  // flush pages clean and shrink the recovery work being measured.
  config.server_cache_pages = 256;
  config.instant_restart = instant;
  return config;
}

// Commits txns transactions per client against its private page triple and
// ships the dirty pages, then crashes the server. Returns the crash time.
uint64_t LoadAndCrash(System* system, uint32_t clients, uint32_t txns,
                      uint32_t object_size) {
  for (uint32_t i = 0; i < clients; ++i) {
    Client& c = system->client(i);
    for (uint32_t t = 0; t < txns; ++t) {
      TxnId txn = c.Begin().value();
      for (uint32_t p = 0; p < kPagesPerClient; ++p) {
        ObjectId oid{PageId(i * kPagesPerClient + p),
                     static_cast<SlotId>(t % 16)};
        if (!c.Write(txn, oid, std::string(object_size, char('a' + t % 26)))
                 .ok()) {
          std::fprintf(stderr, "e16: write failed\n");
          std::abort();
        }
      }
      if (!c.Commit(txn).ok()) {
        std::fprintf(stderr, "e16: commit failed\n");
        std::abort();
      }
    }
    if (Status st = c.ShipAllDirtyPages(); !st.ok()) {
      std::fprintf(stderr, "e16: ship failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  uint64_t t0 = system->clock().now_us();
  if (Status st = system->CrashServer(); !st.ok()) {
    std::fprintf(stderr, "e16: crash failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return t0;
}

Cell RunCell(uint32_t clients, uint32_t txns) {
  // -- Lazy restart: admission opens early, probe reads drain the backlog.
  SystemConfig config = CellConfig(clients, txns, /*instant=*/true);
  auto system = MustCreate(config);
  LoadAndCrash(system.get(), clients, txns, config.object_size);
  if (Status st = system->RecoverServer(); !st.ok()) {
    std::fprintf(stderr, "e16: recover failed: %s\n", st.ToString().c_str());
    std::abort();
  }

  Cell cell{};
  cell.clients = clients;
  cell.txns_per_client = txns;
  Metrics& m = system->metrics();
  cell.pages_marked = m.Get(Counter::kRecoveryPagesMarked);
  cell.first_admit_us = m.Get(Counter::kRecoveryTimeToFirstAdmitUs);

  // Availability probe: strided reads across the touched pages while the
  // backlog is non-empty. The stride is coprime to the page count, so the
  // probe keeps landing ahead of the in-order background sweep and the
  // demand-repair path stays on the critical path. Every successful read
  // here is a request an eager restart would still be refusing.
  const uint32_t total_pages = kPagesPerClient * clients;
  uint32_t p = 0;
  while (system->RecoveryPagesPending() > 0) {
    Client& c = system->client(p % clients);
    ObjectId oid{PageId(p * 7 % total_pages), SlotId{0}};
    TxnId txn = c.Begin().value();
    auto val = c.Read(txn, oid);
    if (!val.ok() || !c.Commit(txn).ok()) {
      std::fprintf(stderr, "e16: probe read failed: %s\n",
                   val.status().ToString().c_str());
      std::abort();
    }
    ++cell.reads_before_recovered;
    ++p;
  }

  cell.fully_recovered_us = m.Get(Counter::kRecoveryTimeToFullyRecoveredUs);
  cell.demand_repairs = m.Get(Counter::kRecoveryDemandRepairs);
  cell.sweep_repairs = m.Get(Counter::kRecoverySweepRepairs);
  cell.admit_speedup =
      cell.first_admit_us > 0
          ? double(cell.fully_recovered_us) / double(cell.first_admit_us)
          : 0;

  // -- Eager baseline: identical load, restart repairs everything up front.
  SystemConfig eager_config = CellConfig(clients, txns, /*instant=*/false);
  auto eager = MustCreate(eager_config);
  uint64_t t0 =
      LoadAndCrash(eager.get(), clients, txns, eager_config.object_size);
  if (Status st = eager->RecoverServer(); !st.ok()) {
    std::fprintf(stderr, "e16: eager recover failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  cell.eager_restart_us = eager->clock().now_us() - t0;
  return cell;
}

}  // namespace

int main() {
  BenchJson json("e16_recovery");
  std::printf("E16: instant restart -- availability during lazy recovery\n");
  std::printf("%8s %5s %7s %12s %12s %12s %10s %8s\n", "clients", "txns",
              "backlog", "admit_us", "full_us", "eager_us", "reads<full",
              "speedup");
  for (uint32_t clients : {4u, 16u, 64u}) {
    for (uint32_t txns : {2u, 8u}) {
      Cell c = RunCell(clients, txns);
      std::printf("%8u %5u %7llu %12llu %12llu %12llu %10llu %8.1f\n",
                  c.clients, c.txns_per_client,
                  (unsigned long long)c.pages_marked,
                  (unsigned long long)c.first_admit_us,
                  (unsigned long long)c.fully_recovered_us,
                  (unsigned long long)c.eager_restart_us,
                  (unsigned long long)c.reads_before_recovered,
                  c.admit_speedup);
      if (c.reads_before_recovered == 0 ||
          c.fully_recovered_us <= c.first_admit_us) {
        std::fprintf(stderr,
                     "e16: cell clients=%u txns=%u shows no availability "
                     "window during recovery\n",
                     c.clients, c.txns_per_client);
        return 1;
      }
      json.BeginRow();
      json.Field("clients", uint64_t{c.clients});
      json.Field("txns_per_client", uint64_t{c.txns_per_client});
      json.Field("pages_marked", c.pages_marked);
      json.Field("first_admit_us", c.first_admit_us);
      json.Field("fully_recovered_us", c.fully_recovered_us);
      json.Field("eager_restart_us", c.eager_restart_us);
      json.Field("reads_before_recovered", c.reads_before_recovered);
      json.Field("demand_repairs", c.demand_repairs);
      json.Field("sweep_repairs", c.sweep_repairs);
      json.Field("admit_speedup", c.admit_speedup);
    }
  }
  return json.Write() ? 0 : 1;
}
